package core

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// TestSameSeedSameResults is the regression guard for the invariant the
// parallel experiment runner relies on: a Model run is a pure function of
// its Config (including Seed), so two runs with the same seed must produce
// identical Results — counts, latency sample moments, and per-class rows.
func TestSameSeedSameResults(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"centralized", Config{Sites: 1, Clients: 30, TotalTxns: 200, Seed: 99}},
		{"replicated", Config{Sites: 3, Clients: 30, TotalTxns: 200, Seed: 99}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func() *Results {
				m, err := New(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				r, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			a, b := run(), run()

			if a.Issued != b.Issued || a.Submitted != b.Submitted ||
				a.Committed != b.Committed || a.Aborted != b.Aborted {
				t.Fatalf("counts diverge: %d/%d/%d/%d vs %d/%d/%d/%d",
					a.Issued, a.Submitted, a.Committed, a.Aborted,
					b.Issued, b.Submitted, b.Committed, b.Aborted)
			}
			if a.Duration != b.Duration || a.Events != b.Events {
				t.Fatalf("run shape diverges: duration %v/%v events %d/%d",
					a.Duration, b.Duration, a.Events, b.Events)
			}
			if a.TPM != b.TPM || a.AbortRatePct != b.AbortRatePct || a.NetKBps != b.NetKBps {
				t.Fatalf("headline metrics diverge: tpm %v/%v abort %v/%v net %v/%v",
					a.TPM, b.TPM, a.AbortRatePct, b.AbortRatePct, a.NetKBps, b.NetKBps)
			}
			// Latency sample moments, not just means: same n, sum, spread.
			for _, s := range []struct {
				name string
				x, y interface {
					N() int
					Mean() float64
					StdDev() float64
				}
			}{
				{"committed", a.LatCommitted, b.LatCommitted},
				{"readonly", a.LatReadOnly, b.LatReadOnly},
				{"update", a.LatUpdate, b.LatUpdate},
				{"cert", a.CertLat, b.CertLat},
			} {
				if s.x.N() != s.y.N() || s.x.Mean() != s.y.Mean() || s.x.StdDev() != s.y.StdDev() {
					t.Fatalf("%s latency sample diverges: n=%d/%d mean=%v/%v sd=%v/%v",
						s.name, s.x.N(), s.y.N(), s.x.Mean(), s.y.Mean(), s.x.StdDev(), s.y.StdDev())
				}
			}
			if !reflect.DeepEqual(a.Classes, b.Classes) {
				t.Fatalf("class breakdown diverges:\n%+v\nvs\n%+v", a.Classes, b.Classes)
			}
			if !reflect.DeepEqual(a.GCS, b.GCS) {
				t.Fatalf("GCS stats diverge: %+v vs %+v", a.GCS, b.GCS)
			}
		})
	}
}

// TestDifferentSeedDifferentResults is the counterpart sanity check: seeds
// actually steer the run (otherwise replication CIs would be meaningless).
func TestDifferentSeedDifferentResults(t *testing.T) {
	run := func(seed int64) *Results {
		m, err := New(Config{Sites: 1, Clients: 30, TotalTxns: 200, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(1), run(2)
	if a.TPM == b.TPM && a.MeanLatencyMS == b.MeanLatencyMS && a.Events == b.Events {
		t.Fatal("two different seeds produced an identical run")
	}
}

// TestDatagramChaosSafeAndDeterministic drives the receiver-side datagram
// chaos injectors — duplication and reordering — hard, in both topologies.
// Ordered streams dedupe by sequence number and the relay round is
// idempotent, so the runs must stay safe; and the injectors draw from the
// per-host RNG streams, so replays must be exact. The fault-free baseline
// must also be untouched by the injectors' mere presence in the code path.
func TestDatagramChaosSafeAndDeterministic(t *testing.T) {
	mk := func(groups int) Config {
		cfg := Config{Sites: 3, Clients: 30, TotalTxns: 200, Seed: 99}
		if groups > 1 {
			cfg.Groups = groups
			cfg.Sites = 2
			cfg.Clients = 60
		}
		cfg.Faults.Duplicate = faults.Duplicate{Rate: 0.3, At: sim.Second}
		cfg.Faults.Reorder = faults.Reorder{Rate: 0.3, Delay: 3 * sim.Millisecond, At: sim.Second}
		return cfg
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"classic", mk(1)},
		{"grouped", mk(3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func() *Results {
				m, err := New(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				r, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			a, b := run(), run()
			if a.SafetyErr != nil {
				t.Fatalf("safety under datagram chaos: %v", a.SafetyErr)
			}
			if a.Inconsistencies != 0 || a.CertDrops != 0 {
				t.Fatalf("inconsistencies=%d certdrops=%d", a.Inconsistencies, a.CertDrops)
			}
			if a.Committed == 0 {
				t.Fatal("nothing committed under datagram chaos")
			}
			if a.Summary() != b.Summary() || a.Events != b.Events {
				t.Fatalf("chaos replay diverged:\n  a: %s (%d events)\n  b: %s (%d events)",
					a.Summary(), a.Events, b.Summary(), b.Events)
			}
		})
	}
}
