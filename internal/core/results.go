package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/gcs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ClassResult is one row of an abort-rate table (paper Tables 1 and 2).
type ClassResult struct {
	Name      string
	Submitted int64
	Committed int64
	AbortLock int64
	AbortCert int64
	AbortUser int64
	// AbortRatePct is aborted/completed in percent.
	AbortRatePct float64
	// MeanLatencyMS is the average committed latency.
	MeanLatencyMS float64
}

// SiteResult summarizes one replica.
type SiteResult struct {
	Site          dbsm.SiteID
	Crashed       bool
	Submitted     int64
	Committed     int64
	Aborted       int64
	CPUUtilPct    float64 // all work
	CPUSimUtilPct float64 // transaction processing
	CPURealUtil   float64 // protocol (real) jobs — Figure 7(c)
	DiskUtilPct   float64 // Figure 6(b)
	RemoteApplied int64
}

// Results carries everything the paper's evaluation reports for one run.
type Results struct {
	// Duration is the measurement window (start to last completion).
	Duration sim.Time
	// Issued counts client submissions (including ones swallowed by
	// crashed sites).
	Issued int
	// Submitted/Committed/Aborted aggregate server-side transactions.
	Submitted int64
	Committed int64
	Aborted   int64
	// TPM is committed transactions per minute — Figure 5(a).
	TPM float64
	// MeanLatencyMS and P95LatencyMS summarize committed latency —
	// Figure 5(b).
	MeanLatencyMS float64
	P95LatencyMS  float64
	// AbortRatePct is the overall abort percentage — Figure 5(c).
	AbortRatePct float64
	// Classes breaks abort rates down per class — Tables 1 and 2.
	Classes []ClassResult
	// Sites summarizes each replica.
	Sites []SiteResult
	// CPUUtilPct / CPURealUtilPct / DiskUtilPct average utilization over
	// live sites — Figures 6(a), 7(c), 6(b).
	CPUUtilPct     float64
	CPURealUtilPct float64
	DiskUtilPct    float64
	// NetKBps is total network traffic — Figure 6(c).
	NetKBps float64
	// LatCommitted/LatReadOnly/LatUpdate/CertLat are latency samples (ms)
	// for distribution plots — Figures 4, 7(a), 7(b).
	LatCommitted *metrics.Sample
	LatReadOnly  *metrics.Sample
	LatUpdate    *metrics.Sample
	CertLat      *metrics.Sample
	// GCS aggregates protocol counters over all stacks.
	GCS gcs.Stats
	// SafetyErr is the off-line commit-sequence comparison verdict
	// (Section 5.3); nil means all operational sites committed identical
	// sequences.
	SafetyErr error
	// Inconsistencies must be zero (local abort vs global commit).
	Inconsistencies int64
	// TxnLog holds per-transaction records when CollectTxnLog was set.
	TxnLog *trace.TxnLog
	// Events is the number of simulation events dispatched.
	Events int64
}

// results assembles the report after the run.
func (m *Model) results() *Results {
	r := &Results{
		Issued:       m.issued,
		LatCommitted: &metrics.Sample{},
		LatReadOnly:  &metrics.Sample{},
		LatUpdate:    &metrics.Sample{},
		CertLat:      &metrics.Sample{},
		TxnLog:       &m.txnLog,
		Events:       m.k.Executed(),
	}
	duration := m.lastDone
	if duration <= 0 {
		duration = m.k.Now()
	}
	r.Duration = duration

	classAgg := map[string]*ClassResult{}
	classLat := map[string]*metrics.Sample{}
	liveSites := 0
	for _, s := range m.sites {
		sub, com, ab := s.Server.Totals()
		sr := SiteResult{
			Site:          s.ID,
			Crashed:       s.crashed,
			Submitted:     sub,
			Committed:     com,
			Aborted:       ab,
			RemoteApplied: s.Server.RemoteApplied(),
		}
		if duration > 0 {
			sr.CPUUtilPct = s.CPUs.Utilization(duration)
			sr.CPUSimUtilPct = s.CPUs.ClassUtilization("sim", duration)
			sr.CPURealUtil = s.CPUs.ClassUtilization("real", duration)
			sr.DiskUtilPct = s.Server.Storage().Utilization(duration)
		}
		r.Sites = append(r.Sites, sr)
		r.Submitted += sub
		r.Committed += com
		r.Aborted += ab
		if !s.crashed {
			liveSites++
			r.CPUUtilPct += sr.CPUUtilPct
			r.CPURealUtilPct += sr.CPURealUtil
			r.DiskUtilPct += sr.DiskUtilPct
		}
		collectClasses(s, classAgg, classLat)
		for _, v := range s.Server.LatCommitted.Values() {
			r.LatCommitted.Add(v)
		}
		for _, v := range s.Server.LatReadOnly.Values() {
			r.LatReadOnly.Add(v)
		}
		for _, v := range s.Server.LatUpdate.Values() {
			r.LatUpdate.Add(v)
		}
		for _, v := range s.Server.CertLat.Values() {
			r.CertLat.Add(v)
		}
		r.Inconsistencies += s.Server.Inconsistencies()
		if s.Stack != nil {
			st := s.Stack.Stats()
			r.GCS.Sent += st.Sent
			r.GCS.Retransmits += st.Retransmits
			r.GCS.Nacks += st.Nacks
			r.GCS.Gossips += st.Gossips
			r.GCS.Delivered += st.Delivered
			r.GCS.Blocked += st.Blocked
			r.GCS.BlockedTime += st.BlockedTime
			r.GCS.ViewChanges += st.ViewChanges
		}
	}
	if liveSites > 0 {
		r.CPUUtilPct /= float64(liveSites)
		r.CPURealUtilPct /= float64(liveSites)
		r.DiskUtilPct /= float64(liveSites)
	}
	if m.dedicated != nil && m.dedicated.Stack != nil {
		st := m.dedicated.Stack.Stats()
		r.GCS.Sent += st.Sent
		r.GCS.Retransmits += st.Retransmits
		r.GCS.Nacks += st.Nacks
		r.GCS.Gossips += st.Gossips
		r.GCS.Blocked += st.Blocked
		r.GCS.BlockedTime += st.BlockedTime
	}
	if duration > 0 {
		r.TPM = float64(r.Committed) / (duration.Seconds() / 60)
		r.NetKBps = float64(m.net.TotalBytes()) / 1024 / duration.Seconds()
	}
	r.MeanLatencyMS = r.LatCommitted.Mean()
	r.P95LatencyMS = r.LatCommitted.Quantile(0.95)
	done := r.Committed + r.Aborted
	r.AbortRatePct = metrics.Rate(r.Aborted, done)

	for name, cr := range classAgg {
		cr.AbortRatePct = metrics.Rate(cr.AbortLock+cr.AbortCert+cr.AbortUser,
			cr.Committed+cr.AbortLock+cr.AbortCert+cr.AbortUser)
		cr.MeanLatencyMS = classLat[name].Mean()
	}
	names := make([]string, 0, len(classAgg))
	for n := range classAgg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Classes = append(r.Classes, *classAgg[n])
	}

	// Off-line safety check over commit logs (replicated runs only).
	if len(m.sites) > 1 {
		logs := make(map[dbsm.SiteID]*trace.CommitLog, len(m.sites))
		operational := make(map[dbsm.SiteID]bool, len(m.sites))
		for _, s := range m.sites {
			logs[s.ID] = s.Replica.CommitLog()
			operational[s.ID] = !s.crashed
		}
		r.SafetyErr = trace.CheckConsistency(logs, operational)
	}
	return r
}

func collectClasses(s *Site, agg map[string]*ClassResult, lat map[string]*metrics.Sample) {
	s.Server.EachClass(func(name string, cs *db.ClassStats) {
		cr := agg[name]
		if cr == nil {
			cr = &ClassResult{Name: name}
			agg[name] = cr
			lat[name] = &metrics.Sample{}
		}
		cr.Submitted += cs.Submitted
		cr.Committed += cs.Committed
		cr.AbortLock += cs.AbortLock
		cr.AbortCert += cs.AbortCert
		cr.AbortUser += cs.AbortUser
		for _, v := range cs.Lat.Values() {
			lat[name].Add(v)
		}
	})
}

// Summary renders a one-line digest.
func (r *Results) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tpm=%.0f latency=%.1fms abort=%.2f%% cpu=%.1f%% disk=%.1f%% net=%.1fKB/s",
		r.TPM, r.MeanLatencyMS, r.AbortRatePct, r.CPUUtilPct, r.DiskUtilPct, r.NetKBps)
	if r.SafetyErr != nil {
		fmt.Fprintf(&b, " SAFETY-VIOLATION(%v)", r.SafetyErr)
	}
	return b.String()
}
