package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/check"
	"repro/internal/db"
	"repro/internal/dbsm"
	"repro/internal/gcs"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/replica"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ClassResult is one row of an abort-rate table (paper Tables 1 and 2).
type ClassResult struct {
	Name      string
	Submitted int64
	Committed int64
	AbortLock int64
	AbortCert int64
	AbortUser int64
	// Rejected counts admission-control refusals (not aborts: the
	// transaction never executed, and the client was invited to retry).
	Rejected int64
	// AbortRatePct is aborted/completed in percent.
	AbortRatePct float64
	// MeanLatencyMS is the average committed latency.
	MeanLatencyMS float64
}

// SiteResult summarizes one replica.
type SiteResult struct {
	Site dbsm.SiteID
	// Group is the site's replication group (0 under full replication).
	Group int
	// State is the lifecycle state at the end of the run (up, crashed,
	// recovering). Crashed is kept as the terminal-crash shorthand.
	State   string
	Crashed bool
	// Recovered reports the site crashed and completed at least one
	// rejoin; its commit log is then held to full equality again.
	Recovered bool
	// Partitioned reports the site spent part of the run isolated in a
	// partition minority; its log is held to the prefix condition.
	Partitioned bool
	Submitted   int64
	Committed   int64
	Aborted     int64
	// Rejected counts admission-control refusals at this site; BacklogPeak
	// is the deepest termination backlog its replica ever reached.
	Rejected      int64
	BacklogPeak   int64
	CPUUtilPct    float64 // all work
	CPUSimUtilPct float64 // transaction processing
	CPURealUtil   float64 // protocol (real) jobs — Figure 7(c)
	DiskUtilPct   float64 // Figure 6(b)
	RemoteApplied int64
	// Availability metrics of the lifecycle refactor: total time not Up,
	// the share of it spent in the Recovering state, snapshot bytes
	// shipped to this site, the commit-sequence gap to the donor at
	// rejoin, and the deliveries replayed in the delta catch-up.
	DowntimeMS   float64
	RecoveryMS   float64
	TransferKB   float64
	RejoinLag    uint64
	DeltaApplied int64
}

// Results carries everything the paper's evaluation reports for one run.
type Results struct {
	// Protocol echoes the run's termination variant.
	Protocol Protocol
	// Duration is the measurement window (start to last completion).
	Duration sim.Time
	// Issued counts client submissions (including ones swallowed by
	// crashed sites).
	Issued int
	// Submitted/Committed/Aborted aggregate server-side transactions.
	Submitted int64
	Committed int64
	Aborted   int64
	// Overload counters. Rejected sums explicit admission refusals (server
	// side); Retries and GiveUps sum client resubmissions and abandoned
	// transactions; RetryLat samples first-submit-to-final-outcome latency
	// (ms) of transactions that needed at least one retry; BacklogPeak is
	// the deepest replica termination backlog across sites.
	Rejected    int64
	Retries     int64
	GiveUps     int64
	RetryLat    *metrics.Sample
	BacklogPeak int64
	// TPM is committed transactions per minute — Figure 5(a).
	TPM float64
	// MeanLatencyMS and P95LatencyMS summarize committed latency —
	// Figure 5(b).
	MeanLatencyMS float64
	P95LatencyMS  float64
	// AbortRatePct is the overall abort percentage — Figure 5(c).
	AbortRatePct float64
	// Classes breaks abort rates down per class — Tables 1 and 2.
	Classes []ClassResult
	// Sites summarizes each replica.
	Sites []SiteResult
	// CPUUtilPct / CPURealUtilPct / DiskUtilPct average utilization over
	// live sites — Figures 6(a), 7(c), 6(b).
	CPUUtilPct     float64
	CPURealUtilPct float64
	DiskUtilPct    float64
	// NetKBps is total network traffic — Figure 6(c).
	NetKBps float64
	// LatCommitted/LatReadOnly/LatUpdate/CertLat are latency samples (ms)
	// for distribution plots — Figures 4, 7(a), 7(b).
	LatCommitted *metrics.Sample
	LatReadOnly  *metrics.Sample
	LatUpdate    *metrics.Sample
	CertLat      *metrics.Sample
	// CertDecideLat samples the certification-decision latency: commit
	// request to first verdict. Equals CertLat under the conservative
	// protocol; one ordering round shorter under optimistic delivery —
	// the latency split the protocol comparison reports.
	CertDecideLat    *metrics.Sample
	MeanCertDecideMS float64
	// CertDrops counts delivered certification payloads discarded on
	// unmarshal failure, summed over replicas. Nonzero means a marshaling
	// or wire-format bug — never silent.
	CertDrops int64
	// Optimistic-pipeline counters, summed over replicas (zero under the
	// conservative protocol).
	Tentative      int64 // tentative certifications (incl. re-certifications)
	Rollbacks      int64 // tentative/final order divergences unwound
	Recertified    int64 // transactions re-certified after rollbacks
	PreApplied     int64 // remote write-sets speculatively pre-written
	PreApplyWasted int64 // pre-writes whose transaction finally aborted
	// OptMispredictPct is the stack-level tentative-order misprediction
	// rate: final deliveries whose spontaneous position disagreed with the
	// total order, in percent of tentative deliveries.
	OptMispredictPct float64
	// Recovery metrics, summed over sites: completed rejoins, snapshot
	// bytes shipped, mean recovery duration and downtime per rejoin, the
	// deliveries replayed as delta catch-up, and install-time prefix-check
	// failures (RejoinViolations must be zero; RejoinErr carries the
	// first one).
	Recoveries       int
	TransferBytes    int64
	MeanRecoveryMS   float64
	MeanDowntimeMS   float64
	DeltaApplied     int64
	RejoinViolations int64
	RejoinErr        error
	// Partial-replication (group mode) detail. Groups echoes the group
	// count (0 for the classic model). MultiGroupTxns counts cross-group
	// commit rounds initiated; MultiGroupCommitted/MultiGroupAborted count
	// their decisions as recorded by the home group's canonical stream;
	// MultiGroupPct is the committed-transaction share that spanned groups.
	// XRetries counts coordinator retransmit ticks, XHandovers coordinator
	// takeovers after a crash — both diagnostics, not errors.
	Groups              int
	MultiGroupTxns      int64
	MultiGroupCommitted int64
	MultiGroupAborted   int64
	MultiGroupPct       float64
	XRetries            int64
	XHandovers          int64
	// XVetoes counts certifications aborted by the cross-group reservation
	// veto; XPrepFrags counts oversized prepare relays that had to ship as
	// fragments. Both diagnostics.
	XVetoes    int64
	XPrepFrags int64
	// GCS aggregates protocol counters over all stacks.
	GCS gcs.Stats
	// SafetyErr is the off-line commit-sequence comparison verdict
	// (Section 5.3), produced by the internal/check consistency checker;
	// nil means all operational sites committed identical sequences and
	// every crashed or partitioned-minority site's log is a prefix of the
	// survivors'. When non-nil it is a *check.Violation.
	SafetyErr error
	// Inconsistencies must be zero (local abort vs global commit).
	Inconsistencies int64
	// TxnLog holds per-transaction records when CollectTxnLog was set.
	TxnLog *trace.TxnLog
	// Events is the number of simulation events dispatched.
	Events int64
}

// results assembles the report after the run.
func (m *Model) results() *Results {
	r := &Results{
		Protocol:      m.cfg.Protocol,
		Issued:        m.issued,
		LatCommitted:  &metrics.Sample{},
		LatReadOnly:   &metrics.Sample{},
		LatUpdate:     &metrics.Sample{},
		CertLat:       &metrics.Sample{},
		CertDecideLat: &metrics.Sample{},
		RetryLat:      &metrics.Sample{},
		TxnLog:        &m.txnLog,
		Events:        m.k.Executed(),
	}
	duration := m.lastDone
	if duration <= 0 {
		duration = m.k.Now()
	}
	r.Duration = duration

	classAgg := map[string]*ClassResult{}
	classLat := map[string]*metrics.Sample{}
	liveSites := 0
	now := m.k.Now()
	for _, s := range m.sites {
		sub, com, ab, rej := s.Server.Totals()
		life := s.Life
		group := 0
		if m.groups > 1 {
			group = m.siteGroup(int32(s.ID))
		}
		sr := SiteResult{
			Site:          s.ID,
			Group:         group,
			State:         life.State().String(),
			Crashed:       life.State() == recovery.StateCrashed,
			Recovered:     life.Recoveries() > 0,
			Partitioned:   s.partitioned,
			Submitted:     sub,
			Committed:     com,
			Aborted:       ab,
			Rejected:      rej,
			RemoteApplied: s.Server.RemoteApplied(),
			DowntimeMS:    life.Downtime(now).Millis(),
			RecoveryMS:    life.RecoveryTime(now).Millis(),
			TransferKB:    float64(life.TransferBytes()) / 1024,
			RejoinLag:     life.RejoinLag(),
		}
		r.Recoveries += life.Recoveries()
		r.TransferBytes += life.TransferBytes()
		if life.Recoveries() > 0 {
			r.MeanRecoveryMS += life.RecoveryTime(now).Millis()
			r.MeanDowntimeMS += life.Downtime(now).Millis()
		}
		if duration > 0 {
			sr.CPUUtilPct = s.CPUs.Utilization(duration)
			sr.CPUSimUtilPct = s.CPUs.ClassUtilization("sim", duration)
			sr.CPURealUtil = s.CPUs.ClassUtilization("real", duration)
			sr.DiskUtilPct = s.Server.Storage().Utilization(duration)
		}
		// Fold the live incarnation's counters on top of any dead
		// incarnations' accumulated at recovery time.
		repStats := s.deadReplica
		if s.Replica != nil {
			accumulateReplica(&repStats, s.Replica.Stats())
		}
		r.CertDrops += repStats.Drops
		r.Tentative += repStats.Tentative
		r.Rollbacks += repStats.Rollbacks
		r.Recertified += repStats.Recertified
		r.PreApplied += repStats.PreApplied
		r.PreApplyWasted += repStats.PreApplyWasted
		r.DeltaApplied += repStats.DeltaApplied
		r.MultiGroupTxns += repStats.XInitiated
		r.XRetries += repStats.XRetries
		r.XHandovers += repStats.XHandovers
		r.XVetoes += repStats.XVetoes
		r.XPrepFrags += repStats.XPrepFrags
		sr.DeltaApplied = repStats.DeltaApplied
		sr.BacklogPeak = repStats.BacklogPeak
		if repStats.BacklogPeak > r.BacklogPeak {
			r.BacklogPeak = repStats.BacklogPeak
		}
		r.Sites = append(r.Sites, sr)
		r.Submitted += sub
		r.Committed += com
		r.Aborted += ab
		r.Rejected += rej
		if s.operational() {
			liveSites++
			r.CPUUtilPct += sr.CPUUtilPct
			r.CPURealUtilPct += sr.CPURealUtil
			r.DiskUtilPct += sr.DiskUtilPct
		}
		collectClasses(s, classAgg, classLat)
		for _, v := range s.Server.LatCommitted.Values() {
			r.LatCommitted.Add(v)
		}
		for _, v := range s.Server.LatReadOnly.Values() {
			r.LatReadOnly.Add(v)
		}
		for _, v := range s.Server.LatUpdate.Values() {
			r.LatUpdate.Add(v)
		}
		for _, v := range s.Server.CertLat.Values() {
			r.CertLat.Add(v)
		}
		for _, v := range s.Server.CertDecideLat.Values() {
			r.CertDecideLat.Add(v)
		}
		r.Inconsistencies += s.Server.Inconsistencies()
		gcsStats := s.deadGCS
		if s.Stack != nil {
			accumulateGCS(&gcsStats, s.Stack.Stats())
		}
		accumulateGCS(&r.GCS, gcsStats)
	}
	for _, c := range m.clients {
		r.Retries += c.Retries()
		r.GiveUps += c.GiveUps()
		for _, v := range c.RetryLat().Values() {
			r.RetryLat.Add(v)
		}
	}
	// The aggregate client tier pools the same counters per site instead of
	// per client; class-level outcome accounting stays where it always was,
	// in each server's ClassStats, so no population-indexed structure exists
	// in either mode.
	for _, a := range m.aggs {
		r.Retries += a.Retries()
		r.GiveUps += a.GiveUps()
		for _, v := range a.RetryLat().Values() {
			r.RetryLat.Add(v)
		}
	}
	r.RejoinViolations = m.rejoinViolations
	r.RejoinErr = m.rejoinViolation
	if liveSites > 0 {
		r.CPUUtilPct /= float64(liveSites)
		r.CPURealUtilPct /= float64(liveSites)
		r.DiskUtilPct /= float64(liveSites)
	}
	if r.Recoveries > 0 {
		r.MeanRecoveryMS /= float64(r.Recoveries)
		r.MeanDowntimeMS /= float64(r.Recoveries)
	}
	if m.dedicated != nil && m.dedicated.Stack != nil {
		st := m.dedicated.Stack.Stats()
		r.GCS.Sent += st.Sent
		r.GCS.Retransmits += st.Retransmits
		r.GCS.Nacks += st.Nacks
		r.GCS.Gossips += st.Gossips
		r.GCS.Blocked += st.Blocked
		r.GCS.BlockedTime += st.BlockedTime
		r.GCS.CreditStalls += st.CreditStalls
		r.GCS.AssignDeferred += st.AssignDeferred
		r.GCS.FlowRejected += st.FlowRejected
		if st.QueuePeakBytes > r.GCS.QueuePeakBytes {
			r.GCS.QueuePeakBytes = st.QueuePeakBytes
		}
	}
	if duration > 0 {
		r.TPM = float64(r.Committed) / (duration.Seconds() / 60)
		r.NetKBps = float64(m.net.TotalBytes()) / 1024 / duration.Seconds()
	}
	r.MeanLatencyMS = r.LatCommitted.Mean()
	r.P95LatencyMS = r.LatCommitted.Quantile(0.95)
	r.MeanCertDecideMS = r.CertDecideLat.Mean()
	r.OptMispredictPct = metrics.Rate(r.GCS.Mispredicted, r.GCS.Optimistic)
	done := r.Committed + r.Aborted
	r.AbortRatePct = metrics.Rate(r.Aborted, done)

	for name, cr := range classAgg {
		cr.AbortRatePct = metrics.Rate(cr.AbortLock+cr.AbortCert+cr.AbortUser,
			cr.Committed+cr.AbortLock+cr.AbortCert+cr.AbortUser)
		cr.MeanLatencyMS = classLat[name].Mean()
	}
	names := make([]string, 0, len(classAgg))
	for n := range classAgg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Classes = append(r.Classes, *classAgg[n])
	}

	// Off-line safety check over commit logs (replicated runs only):
	// crashed sites and partitioned-minority sites are held to the prefix
	// condition, everyone else must agree exactly. Under group mode the
	// one-copy condition holds per replication group (each group runs its
	// own certified order); the cross-group conditions — atomic decisions
	// and an acyclic cross-group serialization graph — are checked on top,
	// over one canonical record stream per group.
	if m.groups > 1 {
		r.Groups = m.groups
		var xlogs []check.GroupXLog
		for g := 1; g <= m.groups; g++ {
			var siteLogs []check.SiteLog
			var canonical *Site
			for _, s := range m.sites {
				if m.siteGroup(int32(s.ID)) != g {
					continue
				}
				siteLogs = append(siteLogs, check.SiteLog{
					Site:        s.ID,
					Operational: s.operational(),
					Recovered:   s.Life.Recoveries() > 0,
					Entries:     s.Replica.CommitLog().Entries(),
				})
				if canonical == nil && s.operational() {
					canonical = s
				}
			}
			if v := check.Logs(siteLogs); v != nil && r.SafetyErr == nil {
				v.Group = g
				r.SafetyErr = v
			}
			if canonical == nil {
				continue // whole group down: nothing canonical to compare
			}
			records := canonical.Replica.XRecords()
			xlogs = append(xlogs, check.GroupXLog{Group: g, Site: canonical.ID, Records: records})
			for _, rec := range records {
				if rec.HomeGroup != g {
					continue
				}
				if rec.Commit {
					r.MultiGroupCommitted++
				} else {
					r.MultiGroupAborted++
				}
			}
		}
		if v := check.CrossGroup(xlogs); v != nil && r.SafetyErr == nil {
			r.SafetyErr = v
		}
		r.MultiGroupPct = metrics.Rate(r.MultiGroupCommitted, r.Committed)
	} else if len(m.sites) > 1 {
		siteLogs := make([]check.SiteLog, 0, len(m.sites))
		for _, s := range m.sites {
			siteLogs = append(siteLogs, check.SiteLog{
				Site:        s.ID,
				Operational: s.operational(),
				Recovered:   s.Life.Recoveries() > 0,
				Entries:     s.Replica.CommitLog().Entries(),
			})
		}
		if v := check.Logs(siteLogs); v != nil {
			r.SafetyErr = v
		}
	}
	if len(m.sites) > 1 && r.SafetyErr == nil && r.RejoinErr != nil {
		// An install-time prefix violation is a safety violation even
		// if the final logs happen to line up.
		r.SafetyErr = r.RejoinErr
	}
	return r
}

// accumulateGCS folds one stack's counters into an accumulator (used for
// run totals and for preserving a dead incarnation's counters across a
// crash-and-rejoin rebuild).
func accumulateGCS(dst *gcs.Stats, s gcs.Stats) {
	dst.Sent += s.Sent
	dst.Retransmits += s.Retransmits
	dst.Nacks += s.Nacks
	dst.AssignAcks += s.AssignAcks
	dst.Gossips += s.Gossips
	dst.GossipsRecv += s.GossipsRecv
	dst.Delivered += s.Delivered
	dst.Optimistic += s.Optimistic
	dst.Mispredicted += s.Mispredicted
	dst.ParseErrors += s.ParseErrors
	dst.Blocked += s.Blocked
	dst.BlockedTime += s.BlockedTime
	dst.ViewChanges += s.ViewChanges
	dst.QuorumLosses += s.QuorumLosses
	dst.JoinRequests += s.JoinRequests
	dst.Joins += s.Joins
	dst.CreditStalls += s.CreditStalls
	dst.AssignDeferred += s.AssignDeferred
	dst.FlowRejected += s.FlowRejected
	dst.FlushAbandons += s.FlushAbandons
	dst.UniformStalls += s.UniformStalls
	// Peak gauges fold with max, not sum.
	if s.QueuePeakBytes > dst.QueuePeakBytes {
		dst.QueuePeakBytes = s.QueuePeakBytes
	}
}

// accumulateReplica folds one replica's counters into an accumulator.
func accumulateReplica(dst *replica.Stats, s replica.Stats) {
	dst.Delivered += s.Delivered
	dst.Drops += s.Drops
	dst.Tentative += s.Tentative
	dst.Rollbacks += s.Rollbacks
	dst.Recertified += s.Recertified
	dst.PreApplied += s.PreApplied
	dst.PreApplyWasted += s.PreApplyWasted
	dst.DeltaApplied += s.DeltaApplied
	dst.MulticastRefused += s.MulticastRefused
	dst.Backpressure += s.Backpressure
	dst.XInitiated += s.XInitiated
	dst.XCommitted += s.XCommitted
	dst.XAborted += s.XAborted
	dst.XRetries += s.XRetries
	dst.XHandovers += s.XHandovers
	dst.XVetoes += s.XVetoes
	dst.XPrepFrags += s.XPrepFrags
	if s.BacklogPeak > dst.BacklogPeak {
		dst.BacklogPeak = s.BacklogPeak
	}
}

// Features exports the run's protocol-state fingerprint: every counter that
// marks a rare protocol state, keyed by a stable name. The adversarial
// explorer (internal/explore) buckets these into its coverage map; anything
// else wanting a behavioural signature of a run can use them too. Keys are
// stable across runs and releases — add, don't rename.
func (r *Results) Features() map[string]int64 {
	return map[string]int64{
		// Membership and ordering edges.
		"viewchanges":   r.GCS.ViewChanges,
		"quorumlosses":  r.GCS.QuorumLosses,
		"flushabandons": r.GCS.FlushAbandons,
		"uniformstalls": r.GCS.UniformStalls,
		"joinrequests":  r.GCS.JoinRequests,
		"joins":         r.GCS.Joins,
		"recoveries":    int64(r.Recoveries),
		// Reliable-stream stress.
		"retransmits":    r.GCS.Retransmits,
		"nacks":          r.GCS.Nacks,
		"assignacks":     r.GCS.AssignAcks,
		"creditstalls":   r.GCS.CreditStalls,
		"assigndeferred": r.GCS.AssignDeferred,
		"flowrejected":   r.GCS.FlowRejected,
		// Optimistic-pipeline divergence.
		"mispredicted": r.GCS.Mispredicted,
		"rollbacks":    r.Rollbacks,
		"recertified":  r.Recertified,
		// Cross-group commit round edges.
		"xretries":   r.XRetries,
		"xhandovers": r.XHandovers,
		"xvetoes":    r.XVetoes,
		"xprepfrags": r.XPrepFrags,
		// Overload and recovery load.
		"rejected":     r.Rejected,
		"retries":      r.Retries,
		"giveups":      r.GiveUps,
		"backlogpeak":  r.BacklogPeak,
		"queuepeakkb":  r.GCS.QueuePeakBytes / 1024,
		"deltaapplied": r.DeltaApplied,
	}
}

func collectClasses(s *Site, agg map[string]*ClassResult, lat map[string]*metrics.Sample) {
	s.Server.EachClass(func(name string, cs *db.ClassStats) {
		cr := agg[name]
		if cr == nil {
			cr = &ClassResult{Name: name}
			agg[name] = cr
			lat[name] = &metrics.Sample{}
		}
		cr.Submitted += cs.Submitted
		cr.Committed += cs.Committed
		cr.AbortLock += cs.AbortLock
		cr.AbortCert += cs.AbortCert
		cr.AbortUser += cs.AbortUser
		cr.Rejected += cs.Rejected
		for _, v := range cs.Lat.Values() {
			lat[name].Add(v)
		}
	})
}

// Summary renders a one-line digest.
func (r *Results) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tpm=%.0f latency=%.1fms abort=%.2f%% cpu=%.1f%% disk=%.1f%% net=%.1fKB/s",
		r.TPM, r.MeanLatencyMS, r.AbortRatePct, r.CPUUtilPct, r.DiskUtilPct, r.NetKBps)
	if r.Protocol == ProtocolOptimistic {
		fmt.Fprintf(&b, " certdecide=%.1fms rollbacks=%d", r.MeanCertDecideMS, r.Rollbacks)
	}
	if r.Recoveries > 0 {
		fmt.Fprintf(&b, " recoveries=%d recovery=%.0fms transfer=%.0fKB delta=%d",
			r.Recoveries, r.MeanRecoveryMS, float64(r.TransferBytes)/1024, r.DeltaApplied)
	}
	if r.Groups > 1 {
		fmt.Fprintf(&b, " groups=%d multigroup=%.2f%% (x: %d committed, %d aborted, %d retries, %d handovers)",
			r.Groups, r.MultiGroupPct, r.MultiGroupCommitted, r.MultiGroupAborted, r.XRetries, r.XHandovers)
	}
	if r.Rejected > 0 || r.Retries > 0 {
		fmt.Fprintf(&b, " rejected=%d retries=%d giveups=%d backlogpeak=%d",
			r.Rejected, r.Retries, r.GiveUps, r.BacklogPeak)
	}
	if r.GCS.CreditStalls > 0 || r.GCS.FlowRejected > 0 || r.GCS.AssignDeferred > 0 {
		fmt.Fprintf(&b, " creditstalls=%d flowrejected=%d assigndeferred=%d queuepeak=%dKB",
			r.GCS.CreditStalls, r.GCS.FlowRejected, r.GCS.AssignDeferred, r.GCS.QueuePeakBytes/1024)
	}
	if r.CertDrops > 0 || r.GCS.ParseErrors > 0 {
		fmt.Fprintf(&b, " DROPS(cert=%d parse=%d)", r.CertDrops, r.GCS.ParseErrors)
	}
	if r.SafetyErr != nil {
		fmt.Fprintf(&b, " SAFETY-VIOLATION(%v)", r.SafetyErr)
	}
	return b.String()
}

// Stat is the mean ± 95% confidence interval of one scalar metric over R
// replicated runs.
type Stat struct {
	Mean float64
	CI95 float64 // half-width of the 95% Student-t confidence interval
	Min  float64
	Max  float64
	N    int
}

// String renders "mean±ci" with one decimal.
func (st Stat) String() string { return fmt.Sprintf("%.1f±%.1f", st.Mean, st.CI95) }

func statOf(vals []float64) Stat {
	var s metrics.Sample
	for _, v := range vals {
		s.Add(v)
	}
	return Stat{Mean: s.Mean(), CI95: s.CI95(), Min: s.Min(), Max: s.Max(), N: s.N()}
}

// ClassAggregate is one row of an abort-rate table aggregated over
// replications.
type ClassAggregate struct {
	Name          string
	AbortRatePct  Stat
	MeanLatencyMS Stat
}

// Aggregate merges R replicated Results of the same configuration (run with
// different seeds) into mean ± 95% CI summaries per reported metric, plus
// pooled latency samples for distribution plots. Aggregation order is the
// replication order, so the same runs always produce the identical
// aggregate regardless of how the runs themselves were scheduled.
type Aggregate struct {
	Reps int
	// Headline metrics — Figures 5 and 6.
	TPM           Stat
	MeanLatencyMS Stat
	P95LatencyMS  Stat
	AbortRatePct  Stat
	CPUUtilPct    Stat
	CPURealUtil   Stat
	DiskUtilPct   Stat
	NetKBps       Stat
	Committed     Stat
	Aborted       Stat
	// Group-communication detail — Figure 7 and Section 5.3.
	GCSRetransmits Stat
	GCSNacks       Stat
	GCSBlocked     Stat
	GCSBlockedMS   Stat
	// Overload detail: admission rejections, client retries, flow-control
	// refusals and credit stalls, and the peak queue/backlog gauges.
	Rejected     Stat
	Retries      Stat
	CreditStalls Stat
	FlowRejected Stat
	BacklogPeak  Stat
	QueuePeakKB  Stat
	// Protocol-comparison detail: certification-decision latency, the
	// optimistic pipeline's mismatch accounting, and the drop counters
	// that must stay zero.
	MeanCertDecideMS Stat
	Rollbacks        Stat
	Recertified      Stat
	OptMispredictPct Stat
	CertDrops        int64
	GCSParseErrors   int64
	// Recovery detail: rejoins completed, recovery duration and downtime
	// per rejoin, snapshot transfer volume, delta catch-up size, and the
	// summed install-time prefix violations (must stay zero).
	Recoveries       Stat
	MeanRecoveryMS   Stat
	MeanDowntimeMS   Stat
	TransferKB       Stat
	DeltaApplied     Stat
	RejoinViolations int64
	// Partial-replication detail: the committed-transaction share that
	// spanned groups, plus the cross-group round's retransmit and
	// coordinator-handover diagnostics.
	MultiGroupPct Stat
	XRetries      Stat
	XHandovers    Stat
	// Classes aggregates abort-rate rows — Tables 1 and 2.
	Classes []ClassAggregate
	// Pooled latency samples over all replications — Figures 4 and 7.
	LatCommitted  *metrics.Sample
	LatReadOnly   *metrics.Sample
	LatUpdate     *metrics.Sample
	CertLat       *metrics.Sample
	CertDecideLat *metrics.Sample
	// SafetyErr is the first replication's safety violation, if any.
	SafetyErr error
	// Inconsistencies sums local-abort-vs-global-commit divergences.
	Inconsistencies int64
	// Events sums simulation events over all replications.
	Events int64
	// Runs holds the underlying per-replication results, in order.
	Runs []*Results
}

// AggregateRuns merges replicated results. It panics on an empty slice —
// every grid point runs at least one replication.
func AggregateRuns(runs []*Results) *Aggregate {
	if len(runs) == 0 {
		panic("core: AggregateRuns on empty run set")
	}
	a := &Aggregate{
		Reps:          len(runs),
		LatCommitted:  &metrics.Sample{},
		LatReadOnly:   &metrics.Sample{},
		LatUpdate:     &metrics.Sample{},
		CertLat:       &metrics.Sample{},
		CertDecideLat: &metrics.Sample{},
		Runs:          runs,
	}
	col := func(get func(*Results) float64) Stat {
		vals := make([]float64, len(runs))
		for i, r := range runs {
			vals[i] = get(r)
		}
		return statOf(vals)
	}
	a.TPM = col(func(r *Results) float64 { return r.TPM })
	a.MeanLatencyMS = col(func(r *Results) float64 { return r.MeanLatencyMS })
	a.P95LatencyMS = col(func(r *Results) float64 { return r.P95LatencyMS })
	a.AbortRatePct = col(func(r *Results) float64 { return r.AbortRatePct })
	a.CPUUtilPct = col(func(r *Results) float64 { return r.CPUUtilPct })
	a.CPURealUtil = col(func(r *Results) float64 { return r.CPURealUtilPct })
	a.DiskUtilPct = col(func(r *Results) float64 { return r.DiskUtilPct })
	a.NetKBps = col(func(r *Results) float64 { return r.NetKBps })
	a.Committed = col(func(r *Results) float64 { return float64(r.Committed) })
	a.Aborted = col(func(r *Results) float64 { return float64(r.Aborted) })
	a.GCSRetransmits = col(func(r *Results) float64 { return float64(r.GCS.Retransmits) })
	a.GCSNacks = col(func(r *Results) float64 { return float64(r.GCS.Nacks) })
	a.GCSBlocked = col(func(r *Results) float64 { return float64(r.GCS.Blocked) })
	a.GCSBlockedMS = col(func(r *Results) float64 { return r.GCS.BlockedTime.Seconds() * 1e3 })
	a.Rejected = col(func(r *Results) float64 { return float64(r.Rejected) })
	a.Retries = col(func(r *Results) float64 { return float64(r.Retries) })
	a.CreditStalls = col(func(r *Results) float64 { return float64(r.GCS.CreditStalls) })
	a.FlowRejected = col(func(r *Results) float64 { return float64(r.GCS.FlowRejected) })
	a.BacklogPeak = col(func(r *Results) float64 { return float64(r.BacklogPeak) })
	a.QueuePeakKB = col(func(r *Results) float64 { return float64(r.GCS.QueuePeakBytes) / 1024 })
	a.MeanCertDecideMS = col(func(r *Results) float64 { return r.MeanCertDecideMS })
	a.Rollbacks = col(func(r *Results) float64 { return float64(r.Rollbacks) })
	a.Recertified = col(func(r *Results) float64 { return float64(r.Recertified) })
	a.OptMispredictPct = col(func(r *Results) float64 { return r.OptMispredictPct })
	a.Recoveries = col(func(r *Results) float64 { return float64(r.Recoveries) })
	a.MeanRecoveryMS = col(func(r *Results) float64 { return r.MeanRecoveryMS })
	a.MeanDowntimeMS = col(func(r *Results) float64 { return r.MeanDowntimeMS })
	a.TransferKB = col(func(r *Results) float64 { return float64(r.TransferBytes) / 1024 })
	a.DeltaApplied = col(func(r *Results) float64 { return float64(r.DeltaApplied) })
	a.MultiGroupPct = col(func(r *Results) float64 { return r.MultiGroupPct })
	a.XRetries = col(func(r *Results) float64 { return float64(r.XRetries) })
	a.XHandovers = col(func(r *Results) float64 { return float64(r.XHandovers) })

	for _, r := range runs {
		for _, v := range r.LatCommitted.Values() {
			a.LatCommitted.Add(v)
		}
		for _, v := range r.LatReadOnly.Values() {
			a.LatReadOnly.Add(v)
		}
		for _, v := range r.LatUpdate.Values() {
			a.LatUpdate.Add(v)
		}
		for _, v := range r.CertLat.Values() {
			a.CertLat.Add(v)
		}
		for _, v := range r.CertDecideLat.Values() {
			a.CertDecideLat.Add(v)
		}
		if a.SafetyErr == nil {
			a.SafetyErr = r.SafetyErr
		}
		a.CertDrops += r.CertDrops
		a.GCSParseErrors += r.GCS.ParseErrors
		a.RejoinViolations += r.RejoinViolations
		a.Inconsistencies += r.Inconsistencies
		a.Events += r.Events
	}

	// Class rows: union of class names in sorted order; a replication that
	// never saw a class contributes a zero observation, keeping every
	// column the same width.
	nameSet := map[string]bool{}
	for _, r := range runs {
		for _, c := range r.Classes {
			nameSet[c.Name] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		abort := make([]float64, len(runs))
		lat := make([]float64, len(runs))
		for i, r := range runs {
			for _, c := range r.Classes {
				if c.Name == name {
					abort[i] = c.AbortRatePct
					lat[i] = c.MeanLatencyMS
					break
				}
			}
		}
		a.Classes = append(a.Classes, ClassAggregate{
			Name:          name,
			AbortRatePct:  statOf(abort),
			MeanLatencyMS: statOf(lat),
		})
	}
	return a
}

// Class returns the aggregated row for a class name, or nil.
func (a *Aggregate) Class(name string) *ClassAggregate {
	for i := range a.Classes {
		if a.Classes[i].Name == name {
			return &a.Classes[i]
		}
	}
	return nil
}

// Summary renders a one-line digest with confidence intervals.
func (a *Aggregate) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tpm=%.0f±%.0f latency=%.1f±%.1fms abort=%.2f±%.2f%% cpu=%.1f%% disk=%.1f%%",
		a.TPM.Mean, a.TPM.CI95, a.MeanLatencyMS.Mean, a.MeanLatencyMS.CI95,
		a.AbortRatePct.Mean, a.AbortRatePct.CI95, a.CPUUtilPct.Mean, a.DiskUtilPct.Mean)
	if a.SafetyErr != nil {
		fmt.Fprintf(&b, " SAFETY-VIOLATION(%v)", a.SafetyErr)
	}
	return b.String()
}
