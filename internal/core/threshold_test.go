package core

import (
	"testing"
)

// The table-lock threshold (Section 3.3): when a read-set is too large to
// multicast, tuples are upgraded to whole-table locks. Smaller messages,
// coarser conflicts.
func TestReadSetThresholdTradeoff(t *testing.T) {
	fine := run(t, Config{Sites: 3, Clients: 60, TotalTxns: 400, Seed: 31})
	coarse := run(t, Config{Sites: 3, Clients: 60, TotalTxns: 400, Seed: 31, ReadSetThreshold: 3})
	if fine.SafetyErr != nil || coarse.SafetyErr != nil {
		t.Fatalf("safety: %v / %v", fine.SafetyErr, coarse.SafetyErr)
	}
	// Coarser certification granularity must not reduce abort rates.
	if coarse.AbortRatePct < fine.AbortRatePct {
		t.Fatalf("table locks reduced aborts: %.2f%% < %.2f%%",
			coarse.AbortRatePct, fine.AbortRatePct)
	}
	// With threshold 3, neworder's ~10 stock reads collapse to a
	// Stock-table lock, so concurrent neworders conflict: abort rate must
	// rise substantially.
	if coarse.AbortRatePct < fine.AbortRatePct+5 {
		t.Fatalf("expected strong conflict inflation from table locks: %.2f%% vs %.2f%%",
			coarse.AbortRatePct, fine.AbortRatePct)
	}
	// And the wire traffic per delivered transaction must shrink.
	finePerMsg := float64(fine.NetKBps) * fine.Duration.Seconds() / float64(fine.GCS.Delivered)
	coarsePerMsg := float64(coarse.NetKBps) * coarse.Duration.Seconds() / float64(coarse.GCS.Delivered)
	if coarsePerMsg >= finePerMsg {
		t.Fatalf("table locks did not shrink messages: %.2f vs %.2f KB/delivery",
			coarsePerMsg, finePerMsg)
	}
}

// The wall-clock profiler (the paper's actual measurement mode) must produce
// a complete, safe run even though timings become non-deterministic.
func TestWallProfilerRun(t *testing.T) {
	r := run(t, Config{Sites: 3, Clients: 30, TotalTxns: 150, Seed: 32, UseWallProfiler: true})
	if r.SafetyErr != nil {
		t.Fatalf("safety: %v", r.SafetyErr)
	}
	if r.Committed < 100 {
		t.Fatalf("committed = %d", r.Committed)
	}
	if r.CPURealUtilPct <= 0 {
		t.Fatal("wall profiler measured no protocol CPU")
	}
}

// Warehouses override decouples database scale from client count.
func TestWarehousesOverride(t *testing.T) {
	// One warehouse for 100 clients: extreme contention on its hot rows.
	hot := run(t, Config{Sites: 1, Clients: 100, TotalTxns: 500, Seed: 33, Warehouses: 1})
	spread := run(t, Config{Sites: 1, Clients: 100, TotalTxns: 500, Seed: 33, Warehouses: 50})
	if hot.AbortRatePct <= spread.AbortRatePct {
		t.Fatalf("1 warehouse should conflict more than 50: %.2f%% vs %.2f%%",
			hot.AbortRatePct, spread.AbortRatePct)
	}
}
