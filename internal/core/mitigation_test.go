package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/gcs"
	"repro/internal/sim"
)

// The Section 5.3 mitigations for sequencer buffer-share exhaustion:
// "increasing available buffer space or allocating a dedicated sequencer
// process."
func TestSequencerMitigations(t *testing.T) {
	base := Config{
		Sites: 3, Clients: 300, TotalTxns: 1200, Seed: 41,
		Faults:   faults.Config{Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.05}},
		GCSTweak: func(c *gcs.Config) { c.BufferBytes = 24 * 1024 }, // tight pool
	}
	tight := run(t, base)
	if tight.SafetyErr != nil {
		t.Fatalf("safety: %v", tight.SafetyErr)
	}
	if tight.GCS.Blocked == 0 {
		t.Skip("tight pool did not block at this scale; mitigation not measurable")
	}

	// Mitigation 1: more buffer space.
	bigger := base
	bigger.GCSTweak = func(c *gcs.Config) { c.BufferBytes = 512 * 1024 }
	relaxed := run(t, bigger)
	if relaxed.SafetyErr != nil {
		t.Fatalf("safety: %v", relaxed.SafetyErr)
	}
	if relaxed.GCS.BlockedTime >= tight.GCS.BlockedTime {
		t.Fatalf("bigger buffers did not reduce blocking: %v vs %v",
			relaxed.GCS.BlockedTime, tight.GCS.BlockedTime)
	}

	// Mitigation 2: dedicated sequencer. The sequencer's buffer share
	// then carries only ordering traffic, so the member issuing sequence
	// numbers — the one whose blocking stalls the whole group — stops
	// starving. Hold the per-member share constant (the pool divides
	// among 4 members instead of 3) and compare blocking at the
	// sequencer member itself.
	seqBlocked := func(cfg Config) (sim.Time, int64) {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.SafetyErr != nil {
			t.Fatalf("safety: %v", r.SafetyErr)
		}
		seq := m.Dedicated()
		if seq == nil {
			seq = m.Sites()[0] // member 1 sequences without the dedicated node
		}
		st := seq.Stack.Stats()
		return st.BlockedTime, r.Committed
	}
	tightSeqBlocked, _ := seqBlocked(base)
	dedicated := base
	dedicated.DedicatedSequencer = true
	dedicated.GCSTweak = func(c *gcs.Config) { c.BufferBytes = 32 * 1024 }
	dsSeqBlocked, dsCommitted := seqBlocked(dedicated)
	if dsSeqBlocked >= tightSeqBlocked {
		t.Fatalf("dedicated sequencer still starves: blocked %v vs %v",
			dsSeqBlocked, tightSeqBlocked)
	}
	if dsCommitted < tight.Committed*9/10 {
		t.Fatalf("dedicated sequencer lost throughput: %d vs %d", dsCommitted, tight.Committed)
	}
}

// A dedicated sequencer member must actually order all traffic.
func TestDedicatedSequencerOrders(t *testing.T) {
	m, err := New(Config{Sites: 3, Clients: 60, TotalTxns: 300, Seed: 42, DedicatedSequencer: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.SafetyErr != nil {
		t.Fatalf("safety: %v", r.SafetyErr)
	}
	ded := m.Dedicated()
	if ded == nil || ded.Stack == nil {
		t.Fatal("dedicated member missing")
	}
	if !ded.Stack.IsSequencer() {
		t.Fatal("dedicated member is not the sequencer")
	}
	for _, s := range m.Sites() {
		if s.Stack.IsSequencer() {
			t.Fatalf("database site %d still sequences", s.ID)
		}
	}
	// All the ordering (SEQ) traffic originates at the dedicated member:
	// it transmits despite casting no application messages.
	if ded.Stack.Stats().Sent == 0 {
		t.Fatal("dedicated sequencer sent nothing")
	}
}
