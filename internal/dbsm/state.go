package dbsm

// CertState is a portable snapshot of a certifier's decision-relevant state:
// the commit sequence, the pruning boundary, and the retained committed
// write-sets. It is what a recovering site state-transfers from a donor
// (internal/recovery) instead of replaying the certified stream from zero:
// importing the state and then feeding the post-snapshot stream yields
// verdicts identical to having processed the whole stream.
//
// The inverted last-writer index is deliberately not serialized: it is a pure
// function of the retained history (dropOldest deletes every index cell at or
// below the pruning boundary), so ImportState rebuilds it by replaying the
// entries — which also regenerates the undo logs a speculative wrapper needs.
type CertState struct {
	// Seq is the commit sequence number at export.
	Seq uint64
	// Pruned is the pruning boundary: transactions whose snapshot predates
	// it abort deterministically.
	Pruned uint64
	// History holds the retained committed write-sets, oldest first.
	History []CommitRecord
}

// CommitRecord is one retained committed write-set.
type CommitRecord struct {
	Seq      uint64
	WriteSet ItemSet
}

// WireSize reports the modeled transfer size of the state in bytes: two
// sequence fields plus, per record, its sequence and 8 bytes per item.
func (st *CertState) WireSize() int64 {
	n := int64(16)
	for i := range st.History {
		n += 8 + 8*int64(len(st.History[i].WriteSet))
	}
	return n
}

// ExportState snapshots the certifier. Write-sets are deep-copied, so the
// exporting certifier can keep running (and pruning) while the snapshot is in
// transit.
func (c *Certifier) ExportState() *CertState {
	st := &CertState{
		Seq:     c.seq,
		Pruned:  c.pruned,
		History: make([]CommitRecord, len(c.history)),
	}
	for i := range c.history {
		e := &c.history[i]
		st.History[i] = CommitRecord{Seq: e.seq, WriteSet: e.writeSet.Clone()}
	}
	return st
}

// ImportState replaces the certifier's state with a snapshot, rebuilding the
// last-writer index (and, when undo logging is enabled, the restore logs) by
// replaying the retained history. Any prior state is discarded; the applied
// vector is kept, as it tracks sites rather than history.
func (c *Certifier) ImportState(st *CertState) {
	for i := range c.history {
		c.history[i] = histEntry{}
	}
	c.history = c.history[:0]
	if !c.scan {
		c.lastWriter = make(map[TupleID]uint64, len(st.History))
		c.tableLock = make(map[uint16]uint64)
		c.tableAny = make(map[uint16]uint64)
	}
	c.pruned = st.Pruned
	for i := range st.History {
		rec := &st.History[i]
		e := histEntry{seq: rec.Seq, writeSet: rec.WriteSet.Clone()}
		c.seq = rec.Seq
		if !c.scan {
			e.undo = c.indexWrites(e.writeSet)
		}
		c.history = append(c.history, e)
	}
	c.seq = st.Seq
}
