package dbsm

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTupleIDEncoding(t *testing.T) {
	id := MakeTupleID(7, 123456)
	if id.Table() != 7 || id.Row() != 123456 || id.IsTableLock() {
		t.Fatalf("id = %x: table=%d row=%d", uint64(id), id.Table(), id.Row())
	}
	lock := MakeTableLock(7)
	if lock.Table() != 7 || !lock.IsTableLock() {
		t.Fatalf("lock = %x", uint64(lock))
	}
	// Row truncation to 48 bits.
	big := MakeTupleID(1, 1<<60|42)
	if big.Row() != 42 {
		t.Fatalf("row = %d, want 42", big.Row())
	}
}

func TestItemSetSortedDedup(t *testing.T) {
	s := NewItemSet(MakeTupleID(2, 5), MakeTupleID(1, 9), MakeTupleID(2, 5), MakeTupleID(1, 1))
	if len(s) != 3 {
		t.Fatalf("len = %d, want 3 (dedup)", len(s))
	}
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
		t.Fatal("not sorted")
	}
	s = s.Add(MakeTupleID(1, 5))
	s = s.Add(MakeTupleID(1, 5)) // duplicate
	if len(s) != 4 {
		t.Fatalf("len after Add = %d, want 4", len(s))
	}
	if !s.Contains(MakeTupleID(1, 5)) || s.Contains(MakeTupleID(9, 9)) {
		t.Fatal("Contains wrong")
	}
}

func TestIntersects(t *testing.T) {
	a := NewItemSet(MakeTupleID(1, 1), MakeTupleID(1, 5), MakeTupleID(2, 3))
	b := NewItemSet(MakeTupleID(1, 2), MakeTupleID(2, 3))
	if !a.Intersects(b) {
		t.Fatal("common tuple not detected")
	}
	c := NewItemSet(MakeTupleID(1, 2), MakeTupleID(3, 1))
	if a.Intersects(c) {
		t.Fatal("false intersection")
	}
	if a.Intersects(nil) || ItemSet(nil).Intersects(a) {
		t.Fatal("empty set intersects")
	}
}

func TestIntersectsTableLock(t *testing.T) {
	tuples := NewItemSet(MakeTupleID(5, 100), MakeTupleID(6, 1))
	lock := NewItemSet(MakeTableLock(5))
	if !tuples.Intersects(lock) {
		t.Fatal("table lock vs tuple of same table must conflict")
	}
	if !lock.Intersects(tuples) {
		t.Fatal("must be symmetric")
	}
	other := NewItemSet(MakeTableLock(7))
	if tuples.Intersects(other) {
		t.Fatal("lock on different table must not conflict")
	}
	if !lock.Intersects(NewItemSet(MakeTableLock(5))) {
		t.Fatal("lock vs lock on same table must conflict")
	}
}

// Property: Intersects is symmetric and agrees with a naive n^2 check
// including table-lock semantics.
func TestIntersectsProperty(t *testing.T) {
	naive := func(a, b ItemSet) bool {
		for _, x := range a {
			for _, y := range b {
				if x == y {
					return true
				}
				if x.Table() == y.Table() && (x.IsTableLock() || y.IsTableLock()) {
					return true
				}
			}
		}
		return false
	}
	f := func(ar, br []uint16, lockA, lockB bool) bool {
		var a, b ItemSet
		for _, v := range ar {
			a = append(a, MakeTupleID(uint16(v%4), uint64(v%16)))
		}
		for _, v := range br {
			b = append(b, MakeTupleID(uint16(v%4), uint64(v%16)))
		}
		if lockA && len(ar) > 0 {
			a = append(a, MakeTableLock(uint16(ar[0]%4)))
		}
		if lockB && len(br) > 0 {
			b = append(b, MakeTableLock(uint16(br[0]%4)))
		}
		a, b = NewItemSet(a...), NewItemSet(b...)
		want := naive(a, b)
		return a.Intersects(b) == want && b.Intersects(a) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeToTableLocks(t *testing.T) {
	var s ItemSet
	for i := 0; i < 10; i++ {
		s = append(s, MakeTupleID(1, uint64(i)))
	}
	s = append(s, MakeTupleID(2, 1))
	s = NewItemSet(s...)
	up := s.UpgradeToTableLocks(5)
	if len(up) != 2 {
		t.Fatalf("len = %d, want 2 (lock + single tuple)", len(up))
	}
	if !up.Contains(MakeTableLock(1)) || !up.Contains(MakeTupleID(2, 1)) {
		t.Fatalf("upgrade wrong: %v", up)
	}
	// Below threshold: unchanged.
	same := s.UpgradeToTableLocks(50)
	if len(same) != len(s) {
		t.Fatal("should not upgrade below threshold")
	}
	if got := s.UpgradeToTableLocks(0); len(got) != len(s) {
		t.Fatal("threshold 0 must disable upgrades")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	tc := &TxnCert{
		TID:           MakeTID(3, 77),
		Site:          3,
		LastCommitted: 41,
		ReadSet:       NewItemSet(MakeTupleID(1, 1), MakeTupleID(2, 9)),
		WriteSet:      NewItemSet(MakeTupleID(2, 9)),
		WriteBytes:    655,
	}
	wire := tc.Marshal()
	if len(wire) != tc.MarshaledSize() {
		t.Fatalf("wire size %d != MarshaledSize %d", len(wire), tc.MarshaledSize())
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.TID != tc.TID || got.Site != tc.Site || got.LastCommitted != tc.LastCommitted ||
		got.WriteBytes != tc.WriteBytes || len(got.ReadSet) != 2 || len(got.WriteSet) != 1 {
		t.Fatalf("got %+v", got)
	}
	if got.ReadSet[1] != MakeTupleID(2, 9) {
		t.Fatal("read set corrupted")
	}
}

func TestUnmarshalRejectsTruncated(t *testing.T) {
	tc := &TxnCert{TID: 1, ReadSet: NewItemSet(MakeTupleID(1, 1)), WriteBytes: 10}
	wire := tc.Marshal()
	for cut := 0; cut < len(wire); cut++ {
		if _, err := Unmarshal(wire[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestMakeTID(t *testing.T) {
	tid := MakeTID(5, 99)
	if TIDSite(tid) != 5 {
		t.Fatalf("site = %d", TIDSite(tid))
	}
}

func TestCertifyCommitAndConflict(t *testing.T) {
	c := NewCertifier()
	w1 := NewItemSet(MakeTupleID(1, 10))
	out := c.Certify(&TxnCert{TID: 1, ReadSet: w1, WriteSet: w1, LastCommitted: 0})
	if !out.Commit || out.Seq != 1 {
		t.Fatalf("first txn: %+v", out)
	}
	// Concurrent reader of tuple (1,10): conflicts with txn 1.
	out2 := c.Certify(&TxnCert{
		TID: 2, LastCommitted: 0,
		ReadSet:  NewItemSet(MakeTupleID(1, 10), MakeTupleID(1, 11)),
		WriteSet: NewItemSet(MakeTupleID(1, 11)),
	})
	if out2.Commit {
		t.Fatal("conflicting concurrent txn committed")
	}
	// Same read-set but serialized after txn 1: no conflict.
	out3 := c.Certify(&TxnCert{
		TID: 3, LastCommitted: 1,
		ReadSet:  NewItemSet(MakeTupleID(1, 10)),
		WriteSet: NewItemSet(MakeTupleID(1, 10)),
	})
	if !out3.Commit || out3.Seq != 2 {
		t.Fatalf("serialized txn: %+v", out3)
	}
}

func TestCertifyReadOnlyNeverRetained(t *testing.T) {
	c := NewCertifier()
	out := c.Certify(&TxnCert{TID: 1, ReadSet: NewItemSet(MakeTupleID(1, 1))})
	if !out.Commit {
		t.Fatal("read-only must commit")
	}
	if c.HistoryLen() != 0 {
		t.Fatal("read-only txn should leave no write-set history")
	}
}

func TestCertifierDeterministicAcrossReplicas(t *testing.T) {
	// Feed the same ordered stream to two certifiers: identical verdicts.
	mk := func() []*TxnCert {
		var txns []*TxnCert
		for i := 0; i < 100; i++ {
			rs := NewItemSet(MakeTupleID(1, uint64(i%7)), MakeTupleID(2, uint64(i%3)))
			ws := NewItemSet(MakeTupleID(1, uint64(i%7)))
			txns = append(txns, &TxnCert{
				TID: uint64(i), ReadSet: rs, WriteSet: ws,
				LastCommitted: uint64(max(0, i-5)),
			})
		}
		return txns
	}
	a, b := NewCertifier(), NewCertifier()
	sa, sb := mk(), mk()
	for i := range sa {
		// LastCommitted beyond current seq means "saw everything": clamp.
		if sa[i].LastCommitted > a.Seq() {
			sa[i].LastCommitted = a.Seq()
			sb[i].LastCommitted = b.Seq()
		}
		oa, ob := a.Certify(sa[i]), b.Certify(sb[i])
		if oa != ob {
			t.Fatalf("replicas diverged at %d: %+v vs %+v", i, oa, ob)
		}
	}
}

func TestCertifierGC(t *testing.T) {
	c := NewCertifier()
	for i := 0; i < 10; i++ {
		ws := NewItemSet(MakeTupleID(1, uint64(i)))
		out := c.Certify(&TxnCert{TID: uint64(i), ReadSet: ws, WriteSet: ws, LastCommitted: c.Seq()})
		if !out.Commit {
			t.Fatal("unexpected abort")
		}
	}
	if c.HistoryLen() != 10 {
		t.Fatalf("history = %d", c.HistoryLen())
	}
	c.NoteApplied(1, 10)
	c.NoteApplied(2, 4)
	c.GC([]SiteID{1, 2})
	if c.HistoryLen() != 6 {
		t.Fatalf("history after GC = %d, want 6", c.HistoryLen())
	}
	c.NoteApplied(2, 10)
	c.GC([]SiteID{1, 2})
	if c.HistoryLen() != 0 {
		t.Fatalf("history after full GC = %d, want 0", c.HistoryLen())
	}
}

func TestCertifierChargeHook(t *testing.T) {
	c := NewCertifier()
	var charged int
	c.Charge = func(items int) { charged += items }
	ws := NewItemSet(MakeTupleID(1, 1))
	c.Certify(&TxnCert{TID: 1, ReadSet: ws, WriteSet: ws})
	c.Certify(&TxnCert{TID: 2, ReadSet: ws, WriteSet: ws, LastCommitted: 0})
	if charged == 0 {
		t.Fatal("charge hook never invoked with work")
	}
}

// Property: certification outcome is independent of set construction order.
func TestCertifyOrderInsensitiveProperty(t *testing.T) {
	f := func(reads []uint8, writes []uint8, perm uint8) bool {
		mk := func(vals []uint8, shift int) ItemSet {
			ids := make([]TupleID, len(vals))
			for i, v := range vals {
				ids[i] = MakeTupleID(uint16(v%3), uint64(v>>2)+uint64(shift))
			}
			return NewItemSet(ids...)
		}
		rs := mk(reads, 0)
		ws := mk(writes, 0)
		c1, c2 := NewCertifier(), NewCertifier()
		seed := NewItemSet(MakeTupleID(0, 1), MakeTupleID(1, 2))
		c1.Certify(&TxnCert{TID: 1, ReadSet: seed, WriteSet: seed})
		c2.Certify(&TxnCert{TID: 1, ReadSet: seed, WriteSet: seed})
		// Reverse input order for c2's set construction.
		rev := make([]uint8, len(reads))
		for i, v := range reads {
			rev[len(reads)-1-i] = v
		}
		rs2 := mk(rev, 0)
		o1 := c1.Certify(&TxnCert{TID: 2, ReadSet: rs, WriteSet: ws})
		o2 := c2.Certify(&TxnCert{TID: 2, ReadSet: rs2, WriteSet: ws})
		return o1 == o2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
