package dbsm

// SpecCertifier layers tentative certification with undo on a Certifier,
// supporting the optimistic-delivery protocol variant: transactions are
// certified in the spontaneous (tentative) delivery order as soon as they
// arrive, one ordering round before the sequencer's final total order. When
// the final order confirms the tentative order, the tentative outcome is
// authoritative and the final delivery costs nothing; when the orders
// diverge, every outstanding tentative decision is rolled back and
// certification restarts from the last finalized state.
//
// Correctness invariant: tent[i] was certified against the state reached by
// the finalized stream plus tent[0..i-1] in queue order. Matching pops
// preserve it (tent[0]'s certification state was exactly the finalized
// state), and any divergence rolls back the whole queue, so a popped outcome
// is always identical to what conservative certification of the final stream
// would have produced.
//
// Pruning is deferred to finalization so it stays a pure function of the
// finalized stream: a Certifier owned by a SpecCertifier never prunes inside
// Certify (its MaxHistory is cleared at construction); instead prune runs
// after each finalized transaction and drops oldest entries based only on
// the finalized history length. Tentative certification therefore never
// moves the pruning boundary, and every replica — whatever its local
// tentative queue looked like — prunes at the same finalized positions.
type SpecCertifier struct {
	c          *Certifier
	maxHistory int
	tent       []specEntry

	// Stats, exported for the replica's pipeline counters.
	Tentatives int64 // tentative certifications (including re-certifications)
	Matches    int64 // final deliveries confirming the tentative order
	Rollbacks  int64 // tentative/final order divergences unwound
}

type specEntry struct {
	t         *TxnCert
	out       Outcome
	histLen   int    // certifier history length before this tentative certify
	seqBefore uint64 // certifier seq before this tentative certify
}

// NewSpecCertifier wraps a certifier for speculative use. The certifier's
// in-Certify pruning is disabled (see the type comment); the wrapper prunes
// deterministically at finalization instead. Index undo logging is switched
// on so rollbacks can restore the inverted index.
func NewSpecCertifier(c *Certifier) *SpecCertifier {
	s := &SpecCertifier{c: c, maxHistory: c.MaxHistory}
	c.MaxHistory = 0
	c.undoEnabled = true
	return s
}

// Certifier exposes the wrapped deterministic certifier.
func (s *SpecCertifier) Certifier() *Certifier { return s.c }

// Finalized reports the certifier's finalized prefix: the history length and
// commit sequence excluding outstanding tentative certifications. A snapshot
// exported from a speculating donor must be truncated to this prefix —
// tentative commits can still be rolled back, and shipping them would leave
// the importer with phantom commits no other replica has.
func (s *SpecCertifier) Finalized() (histLen int, seq uint64) {
	if len(s.tent) == 0 {
		return len(s.c.history), s.c.seq
	}
	return s.tent[0].histLen, s.tent[0].seqBefore
}

// Pending reports outstanding tentative decisions awaiting final order.
func (s *SpecCertifier) Pending() int { return len(s.tent) }

// Tentative certifies t in tentative order and queues the decision. The
// outcome is speculative: it becomes authoritative only when Final confirms
// the order.
func (s *SpecCertifier) Tentative(t *TxnCert) Outcome {
	e := specEntry{t: t, histLen: len(s.c.history), seqBefore: s.c.seq}
	e.out = s.c.Certify(t)
	s.tent = append(s.tent, e)
	s.Tentatives++
	return e.out
}

// Final resolves the final-order delivery of t. When t matches the head of
// the tentative queue, its queued outcome is returned with no further
// certification work and rolled is nil. Otherwise every outstanding
// tentative decision is undone, t is certified against the restored
// finalized state, and the rolled-back transactions (t excluded) are
// returned in tentative order for the caller to re-speculate.
func (s *SpecCertifier) Final(t *TxnCert) (out Outcome, rolled []*TxnCert) {
	if len(s.tent) > 0 && s.tent[0].t.TID == t.TID && !s.pruneInvalidated(&s.tent[0]) {
		out = s.tent[0].out
		s.tent = s.tent[1:]
		s.Matches++
		s.prune()
		return out, nil
	}
	rolled = s.rollback(t.TID)
	out = s.c.Certify(t)
	s.prune()
	return out, rolled
}

// pruneInvalidated reports whether pruning performed since e's tentative
// certification retroactively invalidates its commit verdict: conservative
// certification of the final stream would abort e under the pruned-window
// rule, while the tentative pass — which still saw the dropped entries —
// found no conflict. Such an entry must take the rollback path.
func (s *SpecCertifier) pruneInvalidated(e *specEntry) bool {
	return e.out.Commit && len(e.t.ReadSet) > 0 && e.t.LastCommitted < s.c.pruned
}

// Invalidate removes a tentative decision whose message will never reach
// final delivery — the group discarded it during a view change. A stuck
// entry would otherwise mismatch every subsequent Final forever, so the
// whole queue is rolled back once; the survivors are returned in tentative
// order for re-speculation. Returns nil when tid was never speculated on.
func (s *SpecCertifier) Invalidate(tid uint64) []*TxnCert {
	for _, e := range s.tent {
		if e.t.TID == tid {
			return s.rollback(tid)
		}
	}
	return nil
}

// rollback undoes every tentative decision, restoring the certifier to the
// finalized state, and returns the rolled-back transactions in tentative
// order minus the one being finalized (skip).
func (s *SpecCertifier) rollback(skip uint64) []*TxnCert {
	if len(s.tent) == 0 {
		return nil
	}
	e0 := s.tent[0]
	s.c.truncate(e0.histLen, e0.seqBefore)
	rolled := make([]*TxnCert, 0, len(s.tent))
	for _, e := range s.tent {
		if e.t.TID != skip {
			rolled = append(rolled, e.t)
		}
	}
	s.tent = s.tent[:0]
	s.Rollbacks++
	return rolled
}

// prune drops the oldest finalized history entries beyond the retention
// bound. Only the finalized region — below the oldest outstanding tentative
// entry — is eligible, so the boundary is a pure function of the finalized
// stream and identical at every replica.
func (s *SpecCertifier) prune() {
	if s.maxHistory <= 0 {
		return
	}
	finalized := len(s.c.history)
	if len(s.tent) > 0 {
		finalized = s.tent[0].histLen
	}
	drop := finalized - s.maxHistory
	if drop <= 0 {
		return
	}
	s.c.dropOldest(drop, true)
	for i := range s.tent {
		s.tent[i].histLen -= drop
	}
}
