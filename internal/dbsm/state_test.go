package dbsm

import (
	"testing"

	"repro/internal/sim"
)

// streamGen produces a deterministic certification stream with enough
// conflicts to exercise both verdicts.
func streamGen(seed int64, n int) []*TxnCert {
	g := sim.NewRNG(seed).Fork("state-stream")
	var out []*TxnCert
	var seq uint64
	for i := 0; i < n; i++ {
		t := &TxnCert{TID: uint64(i + 1), Site: SiteID(1 + g.Intn(3))}
		// Snapshot lags the current sequence a little, creating genuine
		// concurrency windows.
		lag := uint64(g.Intn(6))
		if lag > seq {
			lag = seq
		}
		t.LastCommitted = seq - lag
		nr, nw := 1+g.Intn(4), 1+g.Intn(3)
		var reads, writes []TupleID
		for j := 0; j < nr; j++ {
			reads = append(reads, MakeTupleID(uint16(g.Intn(3)), uint64(g.Intn(40))))
		}
		for j := 0; j < nw; j++ {
			writes = append(writes, MakeTupleID(uint16(g.Intn(3)), uint64(g.Intn(40))))
		}
		t.ReadSet = NewItemSet(reads...)
		t.WriteSet = NewItemSet(writes...)
		seq++ // upper bound; actual seq tracked loosely, harmless
		out = append(out, t)
	}
	return out
}

// TestExportImportVerdictEquivalence runs a stream through a reference
// certifier; a second certifier is built mid-stream from an exported snapshot
// and fed the remainder. Both must produce identical verdicts for the suffix.
func TestExportImportVerdictEquivalence(t *testing.T) {
	for _, maxHist := range []int{0, 8} {
		stream := streamGen(42, 400)
		cut := 250

		ref := NewCertifier()
		ref.MaxHistory = maxHist
		var refOut []Outcome
		var snap *CertState
		for i, tc := range stream {
			if i == cut {
				snap = ref.ExportState()
			}
			refOut = append(refOut, ref.Certify(tc))
		}

		joiner := NewCertifier()
		joiner.MaxHistory = maxHist
		joiner.ImportState(snap)
		if joiner.Seq() != snap.Seq {
			t.Fatalf("maxHist=%d: imported seq %d, want %d", maxHist, joiner.Seq(), snap.Seq)
		}
		for i := cut; i < len(stream); i++ {
			got := joiner.Certify(stream[i])
			if got != refOut[i] {
				t.Fatalf("maxHist=%d: verdict diverged at %d: got %+v, ref %+v",
					maxHist, i, got, refOut[i])
			}
		}
	}
}

// TestExportImportScanAgreesWithIndexed imports the same snapshot into an
// indexed and a scan certifier; the suffix verdicts must agree.
func TestExportImportScanAgreesWithIndexed(t *testing.T) {
	stream := streamGen(7, 300)
	cut := 180

	ref := NewCertifier()
	for _, tc := range stream[:cut] {
		ref.Certify(tc)
	}
	snap := ref.ExportState()

	idx := NewCertifier()
	idx.ImportState(snap)
	scan := NewScanCertifier()
	scan.ImportState(snap)
	for i := cut; i < len(stream); i++ {
		a, b := idx.Certify(stream[i]), scan.Certify(stream[i])
		if a != b {
			t.Fatalf("indexed/scan diverged at %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestExportIsDeepCopy mutates the donor after export; the snapshot must be
// unaffected (the donor keeps certifying while the snapshot is in transit).
func TestExportIsDeepCopy(t *testing.T) {
	ref := NewCertifier()
	ref.MaxHistory = 4
	stream := streamGen(9, 60)
	for _, tc := range stream[:30] {
		ref.Certify(tc)
	}
	snap := ref.ExportState()
	before := snap.WireSize()
	hist := len(snap.History)
	for _, tc := range stream[30:] {
		ref.Certify(tc) // prunes and appends under MaxHistory
	}
	if len(snap.History) != hist || snap.WireSize() != before {
		t.Fatal("snapshot mutated by donor activity after export")
	}
	for _, rec := range snap.History {
		if len(rec.WriteSet) == 0 {
			t.Fatal("snapshot history entry lost its write-set")
		}
	}
}

// TestFinalizedExcludesTentatives: a snapshot taken from a speculating
// donor must cover only the finalized prefix — a tentative commit can still
// roll back, and exporting it would hand the importer a phantom commit no
// other replica has.
func TestFinalizedExcludesTentatives(t *testing.T) {
	stream := streamGen(23, 120)
	base := NewCertifier()
	spec := NewSpecCertifier(base)
	for _, tc := range stream[:80] {
		out, _ := spec.Final(tc)
		_ = out
	}
	finalHist, finalSeq := len(base.history), base.seq
	// Outstanding speculation on the next few transactions.
	for _, tc := range stream[80:90] {
		spec.Tentative(tc)
	}
	histLen, seq := spec.Finalized()
	if histLen != finalHist || seq != finalSeq {
		t.Fatalf("Finalized() = (%d, %d), want (%d, %d)", histLen, seq, finalHist, finalSeq)
	}
	st := base.ExportState()
	st.History = st.History[:histLen]
	st.Seq = seq
	joiner := NewCertifier()
	joiner.ImportState(st)
	// The importer must now agree with a conservative certifier fed the
	// finalized stream only, for the entire remaining final order.
	ref := NewCertifier()
	for _, tc := range stream[:80] {
		ref.Certify(tc)
	}
	for _, tc := range stream[80:] {
		a, b := joiner.Certify(tc), ref.Certify(tc)
		if a != b {
			t.Fatalf("verdict diverged after truncated import: %+v vs %+v", a, b)
		}
	}
	if spec.Pending() != 10 {
		t.Fatalf("donor speculation disturbed: %d pending", spec.Pending())
	}
}

// TestImportUnderSpeculation verifies a snapshot can be imported into a
// certifier owned by a SpecCertifier (undo logging on) and that subsequent
// tentative/rollback cycles behave identically to a conservative certifier
// fed the final stream.
func TestImportUnderSpeculation(t *testing.T) {
	stream := streamGen(11, 200)
	cut := 120

	ref := NewCertifier()
	for _, tc := range stream[:cut] {
		ref.Certify(tc)
	}
	snap := ref.ExportState()
	for _, tc := range stream[cut:] {
		ref.Certify(tc)
	}

	base := NewCertifier()
	spec := NewSpecCertifier(base)
	base.ImportState(snap)
	// Tentatively certify the suffix in a permuted order, then finalize in
	// the true order: outcomes must match the conservative reference.
	suffix := stream[cut:]
	perm := append([]*TxnCert(nil), suffix...)
	perm[0], perm[1] = perm[1], perm[0]
	for _, tc := range perm {
		spec.Tentative(tc)
	}
	joinLog := []uint64{}
	for _, tc := range suffix {
		out, _ := spec.Final(tc)
		if out.Commit {
			joinLog = append(joinLog, tc.TID)
		}
	}
	refCheck := NewCertifier()
	refCheck.ImportState(snap)
	refLog := []uint64{}
	for _, tc := range suffix {
		if refCheck.Certify(tc).Commit {
			refLog = append(refLog, tc.TID)
		}
	}
	if len(joinLog) != len(refLog) {
		t.Fatalf("speculative commit count %d, conservative %d", len(joinLog), len(refLog))
	}
	for i := range joinLog {
		if joinLog[i] != refLog[i] {
			t.Fatalf("commit log diverged at %d: %d vs %d", i, joinLog[i], refLog[i])
		}
	}
}
