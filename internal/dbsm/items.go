// Package dbsm implements the Database State Machine certification
// prototype (Section 3.3): the distributed transaction termination protocol
// that multicasts a committing transaction's read-set, write-set, and
// written values, and deterministically certifies it at every replica using
// the total delivery order.
//
// Like internal/gcs, this package is "real code" in the paper's sense: its
// execution cost is accounted to the simulated CPU, and it runs unchanged on
// the native runtime bridge.
package dbsm

import (
	"slices"
	"sort"
)

// TupleID identifies one tuple. The table identifier occupies the highest 16
// bits so that comparing a tuple against a whole-table lock reduces to
// comparing the high-order bits (Section 3.3).
type TupleID uint64

const (
	tableShift = 48
	rowMask    = (uint64(1) << tableShift) - 1
	// tableLockRow marks an identifier that locks an entire table.
	tableLockRow = rowMask
)

// MakeTupleID builds an identifier for a row of a table. Rows are truncated
// to 48 bits.
func MakeTupleID(table uint16, row uint64) TupleID {
	return TupleID(uint64(table)<<tableShift | (row & rowMask))
}

// MakeTableLock builds the identifier representing a lock on the whole
// table, used when a read-set is too large to ship (the table-lock
// threshold).
func MakeTableLock(table uint16) TupleID {
	return TupleID(uint64(table)<<tableShift | tableLockRow)
}

// Table extracts the table identifier.
func (id TupleID) Table() uint16 { return uint16(uint64(id) >> tableShift) }

// Row extracts the row identifier.
func (id TupleID) Row() uint64 { return uint64(id) & rowMask }

// IsTableLock reports whether id locks a whole table.
func (id TupleID) IsTableLock() bool { return uint64(id)&rowMask == tableLockRow }

// ItemSet is a sorted, duplicate-free set of tuple identifiers. Keeping both
// sets ordered lets certification conclude in a single traversal
// (Section 3.3).
type ItemSet []TupleID

// NewItemSet builds a set from arbitrary identifiers, sorting and
// deduplicating.
func NewItemSet(ids ...TupleID) ItemSet {
	s := make(ItemSet, len(ids))
	copy(s, ids)
	slices.Sort(s)
	// Deduplicate in place.
	out := s[:0]
	for i, id := range s {
		if i == 0 || id != s[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// Add inserts an identifier, keeping order; returns the updated set.
func (s ItemSet) Add(id TupleID) ItemSet {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// Contains reports set membership (exact identifier, not table-lock
// semantics).
func (s ItemSet) Contains(id TupleID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// Intersects reports whether the two sets conflict, in a single merged
// traversal. A table lock in either set conflicts with any identifier of the
// same table in the other (tuple or lock), implementing the paper's
// tuple-versus-table comparison via the high-order table bits. The traversal
// merges by table group; because a lock sorts after every tuple of its
// table, it is always the last element of its group, so lock conflicts are
// detected by inspecting group tails before the exact-match merge.
func (s ItemSet) Intersects(o ItemSet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		ta, tb := s[i].Table(), o[j].Table()
		switch {
		case ta < tb:
			i++
		case tb < ta:
			j++
		default:
			ea, eb := s.groupEnd(i), o.groupEnd(j)
			if s[ea-1].IsTableLock() || o[eb-1].IsTableLock() {
				return true
			}
			for i < ea && j < eb {
				switch {
				case s[i] == o[j]:
					return true
				case s[i] < o[j]:
					i++
				default:
					j++
				}
			}
			i, j = ea, eb
		}
	}
	return false
}

// groupEnd returns the index one past the last element sharing the table of
// s[i].
func (s ItemSet) groupEnd(i int) int {
	t := s[i].Table()
	for i < len(s) && s[i].Table() == t {
		i++
	}
	return i
}

// UpgradeToTableLocks replaces per-tuple identifiers with whole-table locks
// for any table contributing more than threshold tuples, bounding the
// read-set size shipped on the network (Section 3.3). threshold <= 0 leaves
// the set unchanged.
func (s ItemSet) UpgradeToTableLocks(threshold int) ItemSet {
	if threshold <= 0 || len(s) <= threshold {
		return s
	}
	out := make(ItemSet, 0, len(s))
	i := 0
	for i < len(s) {
		j := i
		table := s[i].Table()
		for j < len(s) && s[j].Table() == table {
			j++
		}
		if j-i > threshold {
			out = append(out, MakeTableLock(table))
		} else {
			out = append(out, s[i:j]...)
		}
		i = j
	}
	return out
}

// Clone returns an independent copy.
func (s ItemSet) Clone() ItemSet {
	out := make(ItemSet, len(s))
	copy(out, s)
	return out
}
