package dbsm

// Cross-group certification primitives. A multi-group transaction is decided
// by a vote/decide round carried on each involved group's total-order stream
// (internal/replica's cross-commit manager); the certifier contributes two
// deterministic building blocks: a read-only conflict test for the vote and
// an unconditional install for the decide. Both are pure functions of the
// certified stream position at which they run, so every member of a group
// reaches the same vote and the same installed state.

// CheckOnly runs the certification conflict test — would t commit against
// the current state? — without committing it. It is the home-group vote of
// the cross-group commit round: the snapshot-staleness test must pass, but
// the commit itself waits for the decide. The Veto predicate is NOT
// consulted; the caller combines this test with its own reservation check.
func (c *Certifier) CheckOnly(t *TxnCert) bool {
	if t.LastCommitted < c.pruned && len(t.ReadSet) > 0 {
		return false
	}
	if c.scan {
		return c.checkOnlyScan(t)
	}
	work := 0
	ok := true
	for _, r := range t.ReadSet {
		work++
		var last uint64
		if r.IsTableLock() {
			last = c.tableAny[r.Table()]
		} else {
			last = c.lastWriter[r]
			if ls := c.tableLock[r.Table()]; ls > last {
				last = ls
			}
		}
		if last > t.LastCommitted {
			ok = false
			break
		}
	}
	if c.Charge != nil {
		c.Charge(work)
	}
	return ok
}

// checkOnlyScan is the reference-procedure variant of CheckOnly.
func (c *Certifier) checkOnlyScan(t *TxnCert) bool {
	lo, hi := 0, len(c.history)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.history[mid].seq > t.LastCommitted {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	comparisons := 0
	ok := true
	for i := lo; i < len(c.history); i++ {
		e := &c.history[i]
		comparisons += len(e.writeSet) + len(t.ReadSet)
		if e.writeSet.Intersects(t.ReadSet) {
			ok = false
			break
		}
	}
	if c.Charge != nil {
		c.Charge(comparisons)
	}
	return ok
}

// ForceCommit installs t unconditionally: the decide of the cross-group
// commit round, whose verdict was fixed by the vote phase — re-testing here
// would be wrong, since unrelated local commits may have advanced the state
// past t's snapshot while the reservation protected its conflict set. The
// write-set enters the history and index exactly as a certified commit
// would, so subsequent certifications see it.
func (c *Certifier) ForceCommit(t *TxnCert) Outcome {
	if c.Charge != nil {
		c.Charge(len(t.WriteSet))
	}
	c.commit(t)
	return Outcome{Commit: true, Seq: c.seq}
}

// InvalidateAll rolls back every outstanding tentative decision and returns
// the rolled-back transactions in tentative order for re-speculation. The
// cross-commit manager calls it before mutating shared certifier state at a
// final-order event (reservation install, forced commit): tentative outcomes
// computed against the pre-event state would otherwise be served by Final's
// head-match fast path after the state changed under them.
func (s *SpecCertifier) InvalidateAll() []*TxnCert {
	return s.rollback(0)
}
