package dbsm

import (
	"math/rand"
	"testing"
)

// randCertStream produces a randomized certification stream over a small
// tuple universe (to force conflicts), mixing empty read- and write-sets,
// whole-table locks, and stale snapshots that exercise the pruned-window
// abort rule.
func randCertStream(rng *rand.Rand, n int, seqOf func() uint64) []*TxnCert {
	const tables = 8
	const rowsPerTable = 250
	stream := make([]*TxnCert, 0, n)
	for i := 0; i < n; i++ {
		mkSet := func(maxLen int, lockPct int) ItemSet {
			if rng.Intn(10) == 0 {
				return nil // empty set
			}
			ids := make([]TupleID, rng.Intn(maxLen)+1)
			for j := range ids {
				tbl := uint16(rng.Intn(tables) + 1)
				if rng.Intn(100) < lockPct {
					ids[j] = MakeTableLock(tbl)
				} else {
					ids[j] = MakeTupleID(tbl, uint64(rng.Intn(rowsPerTable)))
				}
			}
			return NewItemSet(ids...)
		}
		// Snapshot lag: usually recent, occasionally far in the past so
		// MaxHistory pruning retroactively aborts it.
		seq := seqOf()
		lag := uint64(rng.Intn(40))
		if rng.Intn(20) == 0 {
			lag = uint64(rng.Intn(2000))
		}
		lc := uint64(0)
		if seq > lag {
			lc = seq - lag
		}
		stream = append(stream, &TxnCert{
			TID:           uint64(i + 1),
			Site:          SiteID(rng.Intn(4) + 1),
			LastCommitted: lc,
			ReadSet:       mkSet(20, 4),
			WriteSet:      mkSet(12, 4),
			WriteBytes:    rng.Intn(512),
		})
	}
	return stream
}

// TestCertifierDifferential proves the inverted-index certifier emits the
// identical outcome stream (commit/abort and sequence numbers) as the
// reference scan certifier over randomized transaction streams, across
// unlimited and tight MaxHistory retention (the pruning paths) and advisory
// GC.
func TestCertifierDifferential(t *testing.T) {
	for _, tc := range []struct {
		name       string
		maxHistory int
		txns       int
	}{
		{"unbounded", 0, 12000},
		{"prune-tight", 64, 12000},
		{"prune-mid", 512, 12000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 + tc.maxHistory)))
			idx := NewCertifier()
			scan := NewScanCertifier()
			idx.MaxHistory = tc.maxHistory
			scan.MaxHistory = tc.maxHistory
			stream := randCertStream(rng, tc.txns, idx.Seq)
			commits, aborts := 0, 0
			for i, cert := range stream {
				oi := idx.Certify(cert)
				os := scan.Certify(cert)
				if oi != os {
					t.Fatalf("txn %d: indexed=%+v scan=%+v (cert=%+v)", i, oi, os, cert)
				}
				if oi.Commit {
					commits++
				} else {
					aborts++
				}
				if idx.Seq() != scan.Seq() {
					t.Fatalf("txn %d: seq diverged: indexed=%d scan=%d", i, idx.Seq(), scan.Seq())
				}
				if idx.HistoryLen() != scan.HistoryLen() {
					t.Fatalf("txn %d: history diverged: indexed=%d scan=%d", i, idx.HistoryLen(), scan.HistoryLen())
				}
				// Occasionally run the advisory GC on both, with the
				// same applied vector.
				if tc.maxHistory == 0 && i%2500 == 2499 {
					low := idx.Seq() - uint64(rng.Intn(100))
					for _, s := range []SiteID{1, 2} {
						idx.NoteApplied(s, low)
						scan.NoteApplied(s, low)
					}
					idx.GC([]SiteID{1, 2})
					scan.GC([]SiteID{1, 2})
				}
			}
			if commits == 0 || aborts == 0 {
				t.Fatalf("degenerate stream: %d commits, %d aborts", commits, aborts)
			}
		})
	}
}

// TestSpecCertifierIndexedDifferential drives the speculative wrapper over
// the indexed certifier with a permuted tentative order — forcing rollbacks,
// which exercise the index undo log — and checks that the final outcome
// stream matches conservative scan certification of the final stream.
func TestSpecCertifierIndexedDifferential(t *testing.T) {
	for _, maxHistory := range []int{0, 64} {
		rng := rand.New(rand.NewSource(int64(99 + maxHistory)))
		base := NewCertifier()
		base.MaxHistory = maxHistory
		spec := NewSpecCertifier(base)
		scan := NewScanCertifier()
		scan.MaxHistory = maxHistory

		stream := randCertStream(rng, 10000, scan.Seq)
		const window = 6
		for lo := 0; lo < len(stream); lo += window {
			hi := min(lo+window, len(stream))
			batch := stream[lo:hi]
			// Tentative order: a random permutation of the batch.
			perm := rng.Perm(len(batch))
			for _, p := range perm {
				spec.Tentative(batch[p])
			}
			// Final order: the original stream order.
			for i, cert := range batch {
				out, _ := spec.Final(cert)
				want := scan.Certify(cert)
				if out != want {
					t.Fatalf("maxHistory=%d txn %d: spec(indexed)=%+v scan=%+v",
						maxHistory, lo+i, out, want)
				}
			}
		}
		if spec.Rollbacks == 0 {
			t.Fatal("permuted stream produced no rollbacks; test is vacuous")
		}
	}
}
