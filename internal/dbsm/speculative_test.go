package dbsm

import (
	"math/rand"
	"testing"
)

func specTxn(tid uint64, last uint64, reads, writes []TupleID) *TxnCert {
	return &TxnCert{
		TID:           tid,
		Site:          SiteID(TIDSite(tid)),
		LastCommitted: last,
		ReadSet:       NewItemSet(reads...),
		WriteSet:      NewItemSet(writes...),
	}
}

// In matching order, tentative outcomes are exactly what a plain certifier
// produces on the same stream, and Final confirms them without rollbacks.
func TestSpecMatchingOrderEqualsConservative(t *testing.T) {
	spec := NewSpecCertifier(NewCertifier())
	ref := NewCertifier()
	hot := MakeTupleID(1, 1)
	txns := []*TxnCert{
		specTxn(1, 0, nil, []TupleID{hot}),
		specTxn(2, 0, []TupleID{hot}, []TupleID{MakeTupleID(1, 2)}), // conflicts with 1
		specTxn(3, 1, []TupleID{hot}, nil),                          // snapshot saw 1: no conflict
	}
	tentOuts := make([]Outcome, len(txns))
	for i, tc := range txns {
		tentOuts[i] = spec.Tentative(tc)
	}
	for i, tc := range txns {
		out, rolled := spec.Final(tc)
		if rolled != nil {
			t.Fatalf("txn %d: rollback in matching order", tc.TID)
		}
		if out != tentOuts[i] {
			t.Fatalf("txn %d: final %+v != tentative %+v", tc.TID, out, tentOuts[i])
		}
		if want := ref.Certify(tc); out != want {
			t.Fatalf("txn %d: speculative %+v != conservative %+v", tc.TID, out, want)
		}
	}
	if spec.Rollbacks != 0 || spec.Matches != 3 || spec.Pending() != 0 {
		t.Fatalf("stats: %+v pending=%d", spec, spec.Pending())
	}
}

// When the final order diverges from the tentative order, the speculative
// path must still produce the conservative outcomes of the final stream.
func TestSpecReorderRollsBackToConservativeOutcomes(t *testing.T) {
	spec := NewSpecCertifier(NewCertifier())
	ref := NewCertifier()
	hot := MakeTupleID(1, 7)
	t1 := specTxn(1, 0, []TupleID{hot}, []TupleID{hot})
	t2 := specTxn(2, 0, []TupleID{hot}, []TupleID{hot})
	// Tentative order: t1, t2. t2 tentatively aborts (conflict with t1).
	if out := spec.Tentative(t1); !out.Commit {
		t.Fatal("t1 tentative abort")
	}
	if out := spec.Tentative(t2); out.Commit {
		t.Fatal("t2 tentative commit despite conflict")
	}
	// Final order: t2, t1 — the opposite. t2 must commit, t1 must abort.
	out2, rolled := spec.Final(t2)
	if rolled == nil || len(rolled) != 1 || rolled[0].TID != 1 {
		t.Fatalf("rollback missing or wrong: %v", rolled)
	}
	if want := ref.Certify(t2); out2 != want {
		t.Fatalf("t2 final %+v, conservative %+v", out2, want)
	}
	// Re-speculate the survivor as the replica would.
	tentOut1 := spec.Tentative(t1)
	out1, rolled := spec.Final(t1)
	if rolled != nil {
		t.Fatal("second rollback after re-speculation in final order")
	}
	if out1 != tentOut1 {
		t.Fatalf("re-speculated outcome %+v != final %+v", tentOut1, out1)
	}
	if want := ref.Certify(t1); out1 != want {
		t.Fatalf("t1 final %+v, conservative %+v", out1, want)
	}
	if spec.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d", spec.Rollbacks)
	}
}

// A final delivery with no tentative counterpart (e.g. the tentative stage
// was skipped for it) falls back to conservative certification without
// counting a rollback.
func TestSpecFinalWithoutTentative(t *testing.T) {
	spec := NewSpecCertifier(NewCertifier())
	tc := specTxn(9, 0, nil, []TupleID{MakeTupleID(1, 3)})
	out, rolled := spec.Final(tc)
	if !out.Commit || out.Seq != 1 || rolled != nil {
		t.Fatalf("out=%+v rolled=%v", out, rolled)
	}
	if spec.Rollbacks != 0 {
		t.Fatal("no-tentative fallback counted as rollback")
	}
}

// A discarded message (view change dropped it; it will never finalize) must
// not wedge the queue: Invalidate unwinds it and the survivors re-speculate
// cleanly, after which matching finals confirm without further rollbacks.
func TestSpecInvalidateUnwedgesQueue(t *testing.T) {
	spec := NewSpecCertifier(NewCertifier())
	ref := NewCertifier()
	w := func(i uint64) []TupleID { return []TupleID{MakeTupleID(1, i)} }
	t1 := specTxn(1, 0, nil, w(1)) // will be discarded at the view change
	t2 := specTxn(2, 0, nil, w(2))
	t3 := specTxn(3, 0, nil, w(3))
	spec.Tentative(t1)
	spec.Tentative(t2)
	spec.Tentative(t3)
	rolled := spec.Invalidate(t1.TID)
	if len(rolled) != 2 || rolled[0].TID != 2 || rolled[1].TID != 3 {
		t.Fatalf("rolled = %v", rolled)
	}
	for _, tc := range rolled {
		spec.Tentative(tc)
	}
	for _, tc := range []*TxnCert{t2, t3} {
		out, rb := spec.Final(tc)
		if rb != nil {
			t.Fatalf("txn %d rolled back after invalidation recovery", tc.TID)
		}
		if want := ref.Certify(tc); out != want {
			t.Fatalf("txn %d: %+v != conservative %+v", tc.TID, out, want)
		}
	}
	// Invalidating an unknown TID is a no-op.
	if spec.Invalidate(99) != nil {
		t.Fatal("unknown TID invalidation rolled something back")
	}
}

// Randomized equivalence: whatever permutation the final order applies to
// the tentative order, outcomes must match a conservative certifier fed the
// final stream, and the Seq numbering must be identical.
func TestSpecRandomizedPermutationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		spec := NewSpecCertifier(NewCertifier())
		ref := NewCertifier()
		n := 2 + rng.Intn(6)
		txns := make([]*TxnCert, n)
		for i := range txns {
			var reads, writes []TupleID
			for j := 0; j < 1+rng.Intn(3); j++ {
				reads = append(reads, MakeTupleID(1, uint64(rng.Intn(4))))
			}
			for j := 0; j < rng.Intn(3); j++ {
				writes = append(writes, MakeTupleID(1, uint64(rng.Intn(4))))
			}
			txns[i] = specTxn(uint64(100+i), uint64(rng.Intn(2)), reads, writes)
		}
		for _, tc := range txns {
			spec.Tentative(tc)
		}
		final := rng.Perm(n)
		for _, idx := range final {
			tc := txns[idx]
			out, rolled := spec.Final(tc)
			for _, r := range rolled {
				spec.Tentative(r) // re-speculate as the replica does
			}
			if want := ref.Certify(tc); out != want {
				t.Fatalf("round %d: txn %d speculative %+v != conservative %+v (perm %v)",
					round, tc.TID, out, want, final)
			}
		}
	}
}

// Deferred pruning: the speculative wrapper prunes only finalized history,
// at the same positions a conservative certifier with the same MaxHistory
// would, and a stale snapshot aborts identically on both paths.
func TestSpecDeferredPruningMatchesConservative(t *testing.T) {
	base := NewCertifier()
	base.MaxHistory = 4
	spec := NewSpecCertifier(base)
	ref := NewCertifier()
	ref.MaxHistory = 4
	for i := 0; i < 12; i++ {
		tc := specTxn(uint64(i+1), uint64(i), nil, []TupleID{MakeTupleID(1, uint64(i))})
		spec.Tentative(tc)
		out, rolled := spec.Final(tc)
		if rolled != nil {
			t.Fatalf("txn %d: unexpected rollback", i+1)
		}
		if want := ref.Certify(tc); out != want {
			t.Fatalf("txn %d: %+v != %+v", i+1, out, want)
		}
	}
	if got, want := base.HistoryLen(), ref.HistoryLen(); got != want {
		t.Fatalf("history %d != conservative %d", got, want)
	}
	// A reader whose snapshot predates the retained window aborts on both.
	stale := specTxn(99, 1, []TupleID{MakeTupleID(9, 9)}, nil)
	spec.Tentative(stale)
	out, _ := spec.Final(stale)
	if want := ref.Certify(stale); out != want || out.Commit {
		t.Fatalf("stale snapshot: speculative %+v, conservative %+v", out, want)
	}
}
