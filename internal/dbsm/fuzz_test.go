package dbsm

import (
	"encoding/binary"
	"testing"
)

// hostileLengthCert builds a certification message whose header carries the
// given (possibly hostile) nr/nw/writeBytes length fields over a body of
// bodyLen zero bytes.
func hostileLengthCert(nr, nw, wb uint32, bodyLen int) []byte {
	b := make([]byte, certHeader+bodyLen)
	binary.BigEndian.PutUint64(b[0:8], 1)    // TID
	binary.BigEndian.PutUint32(b[8:12], 2)   // Site
	binary.BigEndian.PutUint64(b[12:20], 3)  // LastCommitted
	binary.BigEndian.PutUint32(b[20:24], nr) // |ReadSet|
	binary.BigEndian.PutUint32(b[24:28], nw) // |WriteSet|
	binary.BigEndian.PutUint32(b[28:32], wb) // WriteBytes
	return b
}

// FuzzUnmarshal asserts that no input — in particular hostile length fields
// that would overflow the offset arithmetic if multiplied before validation —
// can panic the decoder, and that every accepted input re-marshals
// consistently. The seed corpus pins the overflow-shaped headers.
func FuzzUnmarshal(f *testing.F) {
	// Well-formed message.
	good := (&TxnCert{
		TID: 9, Site: 1, LastCommitted: 5,
		ReadSet:    NewItemSet(MakeTupleID(1, 2), MakeTupleID(3, 4)),
		WriteSet:   NewItemSet(MakeTupleID(1, 2)),
		WriteBytes: 64,
	}).Marshal()
	f.Add(good)
	// Truncated header.
	f.Add(good[:certHeader-1])
	// Hostile counts: nr*8 alone overflows int32 arithmetic, and
	// nr+nw sums past any buffer. The decoder must reject these by
	// bounding each count against len(b) before any multiplication.
	f.Add(hostileLengthCert(0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0))
	f.Add(hostileLengthCert(0x20000000, 0x20000000, 0, 16))
	f.Add(hostileLengthCert(2, 0xFFFFFFFE, 0, 16))
	f.Add(hostileLengthCert(0, 0, 0xFFFFFFFF, 8))
	// Counts that fit the header but overrun the body.
	f.Add(hostileLengthCert(3, 0, 0, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		tc, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted input: the sets must lie within the buffer and the
		// message must re-marshal to a decodable form.
		if len(tc.ReadSet)*8+len(tc.WriteSet)*8+tc.WriteBytes > len(data) {
			t.Fatalf("accepted sets larger than input: nr=%d nw=%d wb=%d len=%d",
				len(tc.ReadSet), len(tc.WriteSet), tc.WriteBytes, len(data))
		}
		if _, err := PeekTID(data); err != nil {
			t.Fatal("PeekTID failed on a message Unmarshal accepted")
		}
		rt, err := Unmarshal(tc.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		if rt.TID != tc.TID || len(rt.ReadSet) != len(tc.ReadSet) || len(rt.WriteSet) != len(tc.WriteSet) {
			t.Fatal("round trip mismatch")
		}
	})
}

// TestUnmarshalHostileLengths is the non-fuzz pin of the overflow corpus, so
// plain `go test` exercises it too.
func TestUnmarshalHostileLengths(t *testing.T) {
	cases := [][]byte{
		hostileLengthCert(0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0),
		hostileLengthCert(0x20000000, 0x20000000, 0, 16),
		hostileLengthCert(2, 0xFFFFFFFE, 0, 16),
		hostileLengthCert(0, 0, 0xFFFFFFFF, 8),
		hostileLengthCert(3, 0, 0, 16),
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Fatalf("case %d: hostile lengths accepted", i)
		}
	}
	// Sanity: the zero-length-sets message is still fine.
	if _, err := Unmarshal(hostileLengthCert(0, 0, 0, 0)); err != nil {
		t.Fatalf("benign empty message rejected: %v", err)
	}
}
