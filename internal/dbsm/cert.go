package dbsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// SiteID identifies a replica site (matches runtimeapi.NodeID numerically).
type SiteID int32

// MakeTID builds a globally unique transaction identifier from the
// originating site and a site-local counter.
func MakeTID(site SiteID, local uint32) uint64 {
	return uint64(uint32(site))<<32 | uint64(local)
}

// TIDSite extracts the originating site of a transaction identifier.
func TIDSite(tid uint64) SiteID { return SiteID(tid >> 32) }

// TxnCert is the information gathered when a transaction enters the
// committing stage and atomically multicast to all replicas (Section 3.3):
// identifiers of tuples read and written, the values of written tuples
// (represented by their total size; padding makes the wire message match
// real traffic), and the sequence number of the last transaction committed
// locally, which determines which transactions executed concurrently.
type TxnCert struct {
	// TID is the globally unique transaction identifier.
	TID uint64
	// Site is the originating replica.
	Site SiteID
	// LastCommitted is the certification sequence number of the last
	// transaction applied at Site when this transaction started.
	LastCommitted uint64
	// ReadSet and WriteSet are the sorted tuple identifier sets.
	ReadSet  ItemSet
	WriteSet ItemSet
	// WriteBytes is the total size of the written tuple values.
	WriteBytes int
}

const certHeader = 8 + 4 + 8 + 4 + 4 + 4

// MarshaledSize reports the wire size of the certification message,
// including value padding.
func (t *TxnCert) MarshaledSize() int {
	return certHeader + 8*(len(t.ReadSet)+len(t.WriteSet)) + t.WriteBytes
}

// zeroChunk is the shared source of value padding: MarshalTo copies from it
// instead of allocating WriteBytes of zeroes per message.
var zeroChunk [4096]byte

// Marshal encodes the certification message into a freshly allocated buffer.
// Hot paths should prefer MarshalTo with a reused scratch buffer.
func (t *TxnCert) Marshal() []byte {
	return t.MarshalTo(nil)
}

// MarshalTo encodes the certification message, appending to buf[:0] (buf may
// be nil) and reallocating only when buf's capacity is insufficient — so a
// caller-owned scratch buffer makes marshaling allocation-free. Written
// values are represented by zero padding of the appropriate length, sizing
// the message as in a real system; the padding is copied from a shared zero
// chunk rather than allocated per message.
//
// The returned slice aliases buf when it fits: the caller must finish using
// (or copying) the encoding before reusing the scratch.
//
//hot:path
func (t *TxnCert) MarshalTo(buf []byte) []byte {
	n := t.MarshaledSize()
	if cap(buf) < n {
		//lint:hotalloc-ok capacity miss grows the caller's scratch once, then amortised free
		buf = make([]byte, 0, n)
	}
	buf = buf[:0]
	buf = binary.BigEndian.AppendUint64(buf, t.TID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.Site))
	buf = binary.BigEndian.AppendUint64(buf, t.LastCommitted)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.ReadSet)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.WriteSet)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.WriteBytes))
	for _, id := range t.ReadSet {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	for _, id := range t.WriteSet {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	for pad := t.WriteBytes; pad > 0; {
		c := min(pad, len(zeroChunk))
		buf = append(buf, zeroChunk[:c]...)
		pad -= c
	}
	return buf
}

// errBadCert reports a malformed certification message.
var errBadCert = errors.New("dbsm: malformed certification message")

// Unmarshal decodes a certification message. The item sets are copied out,
// so b may be reused or mutated afterwards. Length fields are validated
// against len(b) before any offset arithmetic, so hostile values cannot
// overflow the offset computations.
//
//hot:path
func Unmarshal(b []byte) (*TxnCert, error) {
	if len(b) < certHeader {
		return nil, errBadCert
	}
	//lint:hotalloc-ok decode returns a fresh message by contract; one struct per decode
	t := &TxnCert{
		TID:           binary.BigEndian.Uint64(b[0:8]),
		Site:          SiteID(binary.BigEndian.Uint32(b[8:12])),
		LastCommitted: binary.BigEndian.Uint64(b[12:20]),
	}
	nr := int(binary.BigEndian.Uint32(b[20:24]))
	nw := int(binary.BigEndian.Uint32(b[24:28]))
	t.WriteBytes = int(binary.BigEndian.Uint32(b[28:32]))
	// Bound each count by the bytes actually present before computing any
	// combined offset: nr+nw and the per-element products stay far below
	// overflow once each is capped by len(b)/8. The sign checks matter on
	// 32-bit platforms, where a hostile uint32 converts to a negative int.
	avail := len(b) - certHeader
	if nr < 0 || nw < 0 || t.WriteBytes < 0 ||
		nr > avail/8 || nw > avail/8-nr || t.WriteBytes > avail-8*(nr+nw) {
		return nil, errBadCert
	}
	// Both sets share one backing array: a single allocation per decode.
	//lint:hotalloc-ok deliberate single allocation shared by both item sets
	ids := make(ItemSet, nr+nw)
	for i := range ids {
		ids[i] = TupleID(binary.BigEndian.Uint64(b[certHeader+8*i:]))
	}
	t.ReadSet = ids[:nr:nr]
	t.WriteSet = ids[nr:]
	return t, nil
}

// PeekTID extracts the transaction identifier from a marshaled certification
// message without decoding the item sets — the optimistic final-delivery fast
// path, which already holds the fully decoded message from the tentative
// stage and only needs the key to look it up.
//
//hot:path
func PeekTID(b []byte) (uint64, error) {
	if len(b) < certHeader {
		return 0, errBadCert
	}
	return binary.BigEndian.Uint64(b[0:8]), nil
}

// Outcome is the certification verdict, identical at every replica.
type Outcome struct {
	// Commit reports whether the transaction passed certification.
	Commit bool
	// Seq is the commit sequence number (1-based) when Commit is true.
	Seq uint64
}

// Certifier executes the deterministic certification procedure. Each replica
// feeds it the totally-ordered stream of TxnCert messages; because the input
// order and the procedure are identical everywhere, every replica reaches
// the same verdict for every transaction.
//
// Two interchangeable implementations produce the identical outcome stream.
// The default (NewCertifier) maintains an inverted last-writer index — per
// tuple, the highest sequence number that committed a write to it, with
// table-level entries carrying the table-lock semantics — so certifying a
// transaction costs O(|ReadSet|) lookups regardless of history depth. The
// reference implementation (NewScanCertifier) scans the retained history as
// the paper formulates the procedure; it is kept behind this switch for
// differential testing and as a fallback.
type Certifier struct {
	// Charge, if set, is invoked with the number of set items the
	// certification actually touched (index lookups and insertions, or
	// identifier comparisons in scan mode), letting the caller account
	// CPU cost for this real code.
	Charge func(items int)
	// MaxHistory bounds retained committed write-sets (0 = unlimited).
	// Pruning is a pure function of the certified stream, so every
	// replica prunes identically; a transaction whose snapshot predates
	// the retained window aborts deterministically (conservative).
	MaxHistory int
	// Veto, if set, is consulted before the conflict test; returning true
	// aborts the transaction regardless of its sets. The cross-group
	// commit path uses it to block transactions conflicting with a pending
	// reservation — the predicate must be a pure function of state derived
	// from the certified stream, so every replica vetoes identically.
	Veto func(*TxnCert) bool

	scan bool
	// undoEnabled records index restore logs with each history entry.
	// Only speculative (tentative) certification ever truncates, so the
	// SpecCertifier wrapper enables it; a plain conservative certifier
	// skips the bookkeeping entirely.
	undoEnabled bool
	history     []histEntry
	seq         uint64
	pruned      uint64 // highest seq dropped by pruning
	applied     map[SiteID]uint64

	// Inverted last-writer index (unused in scan mode). lastWriter maps a
	// tuple to the highest sequence number that committed a write to it;
	// tableLock and tableAny carry the table-lock semantics per table:
	// the highest committing sequence holding a whole-table lock, and the
	// highest committing sequence that wrote anything in the table.
	lastWriter map[TupleID]uint64
	tableLock  map[uint16]uint64
	tableAny   map[uint16]uint64
}

// histEntry is one committed write-set. undo is the index restore log
// (indexed mode only): replaying it newest-first returns the index to its
// state before this commit, which is how speculative rollback unwinds
// tentative certifications.
type histEntry struct {
	seq      uint64
	writeSet ItemSet
	undo     []undoRec
}

// undoRec records one index cell's value prior to an update. prev == 0 means
// the cell was absent (sequence numbers are 1-based).
type undoRec struct {
	key  TupleID
	prev uint64
	kind uint8
}

const (
	undoLW    uint8 = iota // lastWriter[key]
	undoTLock              // tableLock[key.Table()]
	undoTAny               // tableAny[key.Table()]
)

// NewCertifier returns an empty certifier using the inverted last-writer
// index.
func NewCertifier() *Certifier {
	return &Certifier{
		applied:    make(map[SiteID]uint64),
		lastWriter: make(map[TupleID]uint64),
		tableLock:  make(map[uint16]uint64),
		tableAny:   make(map[uint16]uint64),
	}
}

// NewScanCertifier returns an empty certifier using the reference
// history-scan procedure (O(concurrent-history × read-set) per transaction).
func NewScanCertifier() *Certifier {
	return &Certifier{scan: true, applied: make(map[SiteID]uint64)}
}

// Scan reports whether this certifier uses the reference scan procedure.
func (c *Certifier) Scan() bool { return c.scan }

// Seq reports the current commit sequence number (count of committed
// transactions so far).
func (c *Certifier) Seq() uint64 { return c.seq }

// HistoryLen reports retained committed write-sets (for GC tests).
func (c *Certifier) HistoryLen() int { return len(c.history) }

// Certify decides a transaction's fate: it aborts iff its read-set
// intersects the write-set of any committed transaction that executed
// concurrently (certification sequence number greater than the
// transaction's LastCommitted snapshot).
//
//hot:path
func (c *Certifier) Certify(t *TxnCert) Outcome {
	if c.Veto != nil && c.Veto(t) {
		return Outcome{Commit: false}
	}
	if t.LastCommitted < c.pruned && len(t.ReadSet) > 0 {
		// Entries possibly concurrent with this transaction were
		// pruned: conflicts can no longer be ruled out. Abort —
		// deterministically, since pruning follows the certified
		// stream identically at every replica.
		return Outcome{Commit: false}
	}
	if c.scan {
		return c.certifyScan(t)
	}
	work := 0
	for _, r := range t.ReadSet {
		work++
		var last uint64
		if r.IsTableLock() {
			last = c.tableAny[r.Table()]
		} else {
			last = c.lastWriter[r]
			if ls := c.tableLock[r.Table()]; ls > last {
				last = ls
			}
		}
		if last > t.LastCommitted {
			if c.Charge != nil {
				c.Charge(work)
			}
			return Outcome{Commit: false}
		}
	}
	if c.Charge != nil {
		c.Charge(work + len(t.WriteSet))
	}
	c.commit(t)
	return Outcome{Commit: true, Seq: c.seq}
}

// certifyScan is the reference procedure: scan every retained write-set that
// committed after the transaction's snapshot.
//
//hot:path
func (c *Certifier) certifyScan(t *TxnCert) Outcome {
	// Binary search for the first concurrent entry. Open-coded: a
	// sort.Search closure is a heap allocation per certification.
	lo, hi := 0, len(c.history)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.history[mid].seq > t.LastCommitted {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	idx := lo
	comparisons := 0
	for i := idx; i < len(c.history); i++ {
		e := &c.history[i]
		comparisons += len(e.writeSet) + len(t.ReadSet)
		if e.writeSet.Intersects(t.ReadSet) {
			if c.Charge != nil {
				c.Charge(comparisons)
			}
			return Outcome{Commit: false}
		}
	}
	if c.Charge != nil {
		c.Charge(comparisons)
	}
	c.commit(t)
	return Outcome{Commit: true, Seq: c.seq}
}

// commit advances the sequence, records the write-set, and applies the
// in-certify MaxHistory pruning.
//
//hot:path
func (c *Certifier) commit(t *TxnCert) {
	c.seq++
	if len(t.WriteSet) == 0 {
		return
	}
	e := histEntry{seq: c.seq, writeSet: t.WriteSet.Clone()}
	if !c.scan {
		e.undo = c.indexWrites(t.WriteSet)
	}
	c.history = append(c.history, e)
	if c.MaxHistory > 0 && len(c.history) > c.MaxHistory {
		c.dropOldest(len(c.history)-c.MaxHistory, true)
	}
}

// indexWrites records ws as committed at the current sequence number and —
// when undo logging is enabled — returns the log restoring the index cells
// it displaced. ws is sorted, so same-table items are contiguous and the
// table-level cells are updated once per table.
func (c *Certifier) indexWrites(ws ItemSet) []undoRec {
	var undo []undoRec
	if c.undoEnabled {
		undo = make([]undoRec, 0, len(ws)+2)
	}
	var curTable uint16
	haveTable := false
	for _, w := range ws {
		tbl := w.Table()
		if !haveTable || tbl != curTable {
			if c.undoEnabled {
				undo = append(undo, undoRec{key: w, prev: c.tableAny[tbl], kind: undoTAny})
			}
			c.tableAny[tbl] = c.seq
			curTable, haveTable = tbl, true
		}
		if w.IsTableLock() {
			if c.undoEnabled {
				undo = append(undo, undoRec{key: w, prev: c.tableLock[tbl], kind: undoTLock})
			}
			c.tableLock[tbl] = c.seq
		} else {
			if c.undoEnabled {
				undo = append(undo, undoRec{key: w, prev: c.lastWriter[w], kind: undoLW})
			}
			c.lastWriter[w] = c.seq
		}
	}
	return undo
}

// truncate restores the certifier to an earlier state: history cut back to
// histLen entries and the sequence counter to seqBefore, with every index
// update of the removed entries unwound (newest first). It is the undo
// primitive of speculative rollback — only valid on a certifier whose undo
// logging was enabled by its SpecCertifier wrapper; the removed suffix never
// crosses the pruning boundary because SpecCertifier prunes only the
// finalized region.
func (c *Certifier) truncate(histLen int, seqBefore uint64) {
	if !c.scan && !c.undoEnabled && len(c.history) > histLen {
		panic("dbsm: truncate on an indexed certifier without undo logging")
	}
	for i := len(c.history) - 1; i >= histLen; i-- {
		e := &c.history[i]
		for j := len(e.undo) - 1; j >= 0; j-- {
			u := e.undo[j]
			switch u.kind {
			case undoLW:
				if u.prev == 0 {
					delete(c.lastWriter, u.key)
				} else {
					c.lastWriter[u.key] = u.prev
				}
			case undoTLock:
				if u.prev == 0 {
					delete(c.tableLock, u.key.Table())
				} else {
					c.tableLock[u.key.Table()] = u.prev
				}
			case undoTAny:
				if u.prev == 0 {
					delete(c.tableAny, u.key.Table())
				} else {
					c.tableAny[u.key.Table()] = u.prev
				}
			}
		}
		c.history[i] = histEntry{}
	}
	c.history = c.history[:histLen]
	c.seq = seqBefore
}

// dropOldest removes the oldest drop history entries. When prune is true the
// pruning boundary advances to the newest dropped sequence (the MaxHistory
// retention rule); when false the boundary is untouched (advisory GC). In
// indexed mode, index cells still pointing at dropped sequences are deleted:
// any transaction that survives the pruned-window abort rule has
// LastCommitted at or above every dropped sequence, so those cells can never
// produce a conflict again — removing them bounds the index to the live
// history.
func (c *Certifier) dropOldest(drop int, prune bool) {
	if drop <= 0 {
		return
	}
	boundary := c.history[drop-1].seq
	if prune && boundary > c.pruned {
		c.pruned = boundary
	}
	if !c.scan {
		for i := 0; i < drop; i++ {
			ws := c.history[i].writeSet
			var curTable uint16
			haveTable := false
			for _, w := range ws {
				tbl := w.Table()
				if !haveTable || tbl != curTable {
					if c.tableAny[tbl] <= boundary {
						delete(c.tableAny, tbl)
					}
					if c.tableLock[tbl] <= boundary {
						delete(c.tableLock, tbl)
					}
					curTable, haveTable = tbl, true
				}
				if !w.IsTableLock() && c.lastWriter[w] <= boundary {
					delete(c.lastWriter, w)
				}
			}
		}
	}
	n := copy(c.history, c.history[drop:])
	for i := n; i < len(c.history); i++ {
		c.history[i] = histEntry{}
	}
	c.history = c.history[:n]
}

// NoteApplied records that a site has applied all transactions up to seq.
//
// CAUTION: GC based on these advisory values is only safe when the caller
// can bound the age of in-flight snapshots; replica deployments use the
// deterministic MaxHistory pruning instead, because timer-driven GC is not a
// function of the certified stream and can diverge across replicas.
func (c *Certifier) NoteApplied(site SiteID, seq uint64) {
	if seq > c.applied[site] {
		c.applied[site] = seq
	}
}

// GC drops history entries every site has already applied. sites lists the
// current replica membership.
func (c *Certifier) GC(sites []SiteID) {
	if len(sites) == 0 {
		return
	}
	low := c.seq
	for _, s := range sites {
		if a := c.applied[s]; a < low {
			low = a
		}
	}
	idx := sort.Search(len(c.history), func(i int) bool { return c.history[i].seq > low })
	c.dropOldest(idx, false)
}

// String aids debugging.
func (c *Certifier) String() string {
	return fmt.Sprintf("certifier{seq=%d history=%d}", c.seq, len(c.history))
}
