package dbsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// SiteID identifies a replica site (matches runtimeapi.NodeID numerically).
type SiteID int32

// MakeTID builds a globally unique transaction identifier from the
// originating site and a site-local counter.
func MakeTID(site SiteID, local uint32) uint64 {
	return uint64(uint32(site))<<32 | uint64(local)
}

// TIDSite extracts the originating site of a transaction identifier.
func TIDSite(tid uint64) SiteID { return SiteID(tid >> 32) }

// TxnCert is the information gathered when a transaction enters the
// committing stage and atomically multicast to all replicas (Section 3.3):
// identifiers of tuples read and written, the values of written tuples
// (represented by their total size; padding makes the wire message match
// real traffic), and the sequence number of the last transaction committed
// locally, which determines which transactions executed concurrently.
type TxnCert struct {
	// TID is the globally unique transaction identifier.
	TID uint64
	// Site is the originating replica.
	Site SiteID
	// LastCommitted is the certification sequence number of the last
	// transaction applied at Site when this transaction started.
	LastCommitted uint64
	// ReadSet and WriteSet are the sorted tuple identifier sets.
	ReadSet  ItemSet
	WriteSet ItemSet
	// WriteBytes is the total size of the written tuple values.
	WriteBytes int
}

const certHeader = 8 + 4 + 8 + 4 + 4 + 4

// MarshaledSize reports the wire size of the certification message,
// including value padding.
func (t *TxnCert) MarshaledSize() int {
	return certHeader + 8*(len(t.ReadSet)+len(t.WriteSet)) + t.WriteBytes
}

// Marshal encodes the certification message. Written values are represented
// by zero padding of the appropriate length, sizing the message as in a real
// system. The prototype avoids copying already-marshaled buffers, so Marshal
// allocates exactly once.
func (t *TxnCert) Marshal() []byte {
	buf := make([]byte, 0, t.MarshaledSize())
	buf = binary.BigEndian.AppendUint64(buf, t.TID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.Site))
	buf = binary.BigEndian.AppendUint64(buf, t.LastCommitted)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.ReadSet)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.WriteSet)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.WriteBytes))
	for _, id := range t.ReadSet {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	for _, id := range t.WriteSet {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	buf = append(buf, make([]byte, t.WriteBytes)...)
	return buf
}

// errBadCert reports a malformed certification message.
var errBadCert = errors.New("dbsm: malformed certification message")

// Unmarshal decodes a certification message.
func Unmarshal(b []byte) (*TxnCert, error) {
	if len(b) < certHeader {
		return nil, errBadCert
	}
	t := &TxnCert{
		TID:           binary.BigEndian.Uint64(b[0:8]),
		Site:          SiteID(binary.BigEndian.Uint32(b[8:12])),
		LastCommitted: binary.BigEndian.Uint64(b[12:20]),
	}
	nr := int(binary.BigEndian.Uint32(b[20:24]))
	nw := int(binary.BigEndian.Uint32(b[24:28]))
	t.WriteBytes = int(binary.BigEndian.Uint32(b[28:32]))
	if nr < 0 || nw < 0 || len(b) < certHeader+8*(nr+nw)+t.WriteBytes {
		return nil, errBadCert
	}
	t.ReadSet = make(ItemSet, nr)
	for i := 0; i < nr; i++ {
		t.ReadSet[i] = TupleID(binary.BigEndian.Uint64(b[certHeader+8*i:]))
	}
	t.WriteSet = make(ItemSet, nw)
	for i := 0; i < nw; i++ {
		t.WriteSet[i] = TupleID(binary.BigEndian.Uint64(b[certHeader+8*nr+8*i:]))
	}
	return t, nil
}

// PeekTID extracts the transaction identifier from a marshaled certification
// message without decoding the item sets — the optimistic final-delivery fast
// path, which already holds the fully decoded message from the tentative
// stage and only needs the key to look it up.
func PeekTID(b []byte) (uint64, error) {
	if len(b) < certHeader {
		return 0, errBadCert
	}
	return binary.BigEndian.Uint64(b[0:8]), nil
}

// Outcome is the certification verdict, identical at every replica.
type Outcome struct {
	// Commit reports whether the transaction passed certification.
	Commit bool
	// Seq is the commit sequence number (1-based) when Commit is true.
	Seq uint64
}

// Certifier executes the deterministic certification procedure. Each replica
// feeds it the totally-ordered stream of TxnCert messages; because the input
// order and the procedure are identical everywhere, every replica reaches
// the same verdict for every transaction.
type Certifier struct {
	// Charge, if set, is invoked with the number of identifier
	// comparisons performed, letting the caller account CPU cost for
	// this real code.
	Charge func(items int)
	// MaxHistory bounds retained committed write-sets (0 = unlimited).
	// Pruning is a pure function of the certified stream, so every
	// replica prunes identically; a transaction whose snapshot predates
	// the retained window aborts deterministically (conservative).
	MaxHistory int

	history []histEntry
	seq     uint64
	pruned  uint64 // highest seq dropped by pruning
	applied map[SiteID]uint64
}

type histEntry struct {
	seq      uint64
	writeSet ItemSet
}

// NewCertifier returns an empty certifier.
func NewCertifier() *Certifier {
	return &Certifier{applied: make(map[SiteID]uint64)}
}

// Seq reports the current commit sequence number (count of committed
// transactions so far).
func (c *Certifier) Seq() uint64 { return c.seq }

// HistoryLen reports retained committed write-sets (for GC tests).
func (c *Certifier) HistoryLen() int { return len(c.history) }

// Certify decides a transaction's fate: it aborts iff its read-set
// intersects the write-set of any committed transaction that executed
// concurrently (certification sequence number greater than the
// transaction's LastCommitted snapshot).
func (c *Certifier) Certify(t *TxnCert) Outcome {
	if t.LastCommitted < c.pruned && len(t.ReadSet) > 0 {
		// Entries possibly concurrent with this transaction were
		// pruned: conflicts can no longer be ruled out. Abort —
		// deterministically, since pruning follows the certified
		// stream identically at every replica.
		return Outcome{Commit: false}
	}
	// Binary search for the first concurrent entry.
	idx := sort.Search(len(c.history), func(i int) bool {
		return c.history[i].seq > t.LastCommitted
	})
	comparisons := 0
	for _, e := range c.history[idx:] {
		comparisons += len(e.writeSet) + len(t.ReadSet)
		if e.writeSet.Intersects(t.ReadSet) {
			if c.Charge != nil {
				c.Charge(comparisons)
			}
			return Outcome{Commit: false}
		}
	}
	if c.Charge != nil {
		c.Charge(comparisons)
	}
	c.seq++
	if len(t.WriteSet) > 0 {
		c.history = append(c.history, histEntry{seq: c.seq, writeSet: t.WriteSet.Clone()})
		if c.MaxHistory > 0 && len(c.history) > c.MaxHistory {
			drop := len(c.history) - c.MaxHistory
			c.pruned = c.history[drop-1].seq
			c.history = append(c.history[:0:0], c.history[drop:]...)
		}
	}
	return Outcome{Commit: true, Seq: c.seq}
}

// NoteApplied records that a site has applied all transactions up to seq.
//
// CAUTION: GC based on these advisory values is only safe when the caller
// can bound the age of in-flight snapshots; replica deployments use the
// deterministic MaxHistory pruning instead, because timer-driven GC is not a
// function of the certified stream and can diverge across replicas.
func (c *Certifier) NoteApplied(site SiteID, seq uint64) {
	if seq > c.applied[site] {
		c.applied[site] = seq
	}
}

// GC drops history entries every site has already applied. sites lists the
// current replica membership.
func (c *Certifier) GC(sites []SiteID) {
	if len(sites) == 0 {
		return
	}
	low := c.seq
	for _, s := range sites {
		if a := c.applied[s]; a < low {
			low = a
		}
	}
	idx := sort.Search(len(c.history), func(i int) bool { return c.history[i].seq > low })
	if idx > 0 {
		c.history = append(c.history[:0:0], c.history[idx:]...)
	}
}

// String aids debugging.
func (c *Certifier) String() string {
	return fmt.Sprintf("certifier{seq=%d history=%d}", c.seq, len(c.history))
}
