package dbsm

import "testing"

// TestMarshalToAllocFree pins the zero-allocation budget of the hot marshal
// path: with a warm scratch buffer, TxnCert.MarshalTo must not allocate —
// the zero padding comes from the shared chunk and the encoding reuses the
// caller's buffer.
func TestMarshalToAllocFree(t *testing.T) {
	tc := &TxnCert{
		TID: 7, Site: 2, LastCommitted: 40,
		ReadSet:    NewItemSet(MakeTupleID(1, 10), MakeTupleID(2, 20), MakeTupleID(3, 30)),
		WriteSet:   NewItemSet(MakeTupleID(1, 10)),
		WriteBytes: 9000, // > one zero chunk, exercising the chunked padding
	}
	scratch := tc.MarshalTo(nil)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = tc.MarshalTo(scratch)
	})
	if allocs != 0 {
		t.Fatalf("MarshalTo with warm scratch: %v allocs/op, want 0", allocs)
	}
	if _, err := Unmarshal(scratch); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

// TestUnmarshalAllocBudget pins the decode path at its fixed budget: one
// TxnCert struct plus one shared backing array for both item sets.
func TestUnmarshalAllocBudget(t *testing.T) {
	tc := &TxnCert{
		TID: 7, ReadSet: NewItemSet(1, 2, 3), WriteSet: NewItemSet(9),
		WriteBytes: 128,
	}
	wire := tc.Marshal()
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Unmarshal(wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Unmarshal: %v allocs/op, want <= 2 (struct + shared set array)", allocs)
	}
}
