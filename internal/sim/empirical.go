package sim

import "sort"

// Empirical is an empirical distribution built from observed samples,
// sampled by inverse-transform with linear interpolation between order
// statistics. The paper drives the simulated database server with empirical
// per-transaction-class CPU time distributions obtained by profiling
// PostgreSQL; this type is the container for such calibration data.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds a distribution from samples. It copies and sorts the
// input. It panics if samples is empty: an empty calibration table is a
// configuration bug the caller must fix.
func NewEmpirical(samples []float64) *Empirical {
	if len(samples) == 0 {
		panic("sim: empirical distribution needs at least one sample")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &Empirical{sorted: s}
}

// Sample draws a value using g.
func (e *Empirical) Sample(g *RNG) float64 {
	return e.Quantile(g.Float64())
}

// SampleDur draws a duration, interpreting the samples as nanoseconds.
func (e *Empirical) SampleDur(g *RNG) Time {
	v := e.Sample(g)
	if v < 0 {
		return 0
	}
	return Time(v)
}

// Quantile returns the q-th quantile (q in [0,1]) with linear interpolation.
func (e *Empirical) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 1 {
		return e.sorted[0]
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return e.sorted[n-1]
	}
	return e.sorted[i]*(1-frac) + e.sorted[i+1]*frac
}

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 {
	sum := 0.0
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Min and Max return the extreme samples.
func (e *Empirical) Min() float64 { return e.sorted[0] }

// Max returns the largest sample.
func (e *Empirical) Max() float64 { return e.sorted[len(e.sorted)-1] }

// N reports the number of underlying samples.
func (e *Empirical) N() int { return len(e.sorted) }
