// Package sim provides a deterministic discrete-event simulation kernel
// modeled after the Scalable Simulation Framework (SSF) used by the paper.
//
// All simulated components schedule closures on a Kernel; the kernel runs
// them in non-decreasing timestamp order. Determinism is guaranteed by a
// total order on events (time, priority, insertion sequence) and by drawing
// all randomness from seeded RNG streams (see rng.go).
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated instant or duration expressed in nanoseconds.
//
// It deliberately mirrors time.Duration so that protocol code written
// against the runtime abstraction can be moved between simulated and native
// execution without unit conversions.
type Time int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration converts a time.Duration to a simulated Time.
func FromDuration(d time.Duration) Time { return Time(d) }

// FromSeconds converts seconds to a simulated Time, rounding to nanoseconds.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats t using time.Duration notation (e.g. "1.5ms").
func (t Time) String() string { return time.Duration(t).String() }

// GoString implements fmt.GoStringer for readable test failures.
func (t Time) GoString() string { return fmt.Sprintf("sim.Time(%s)", t.String()) }
