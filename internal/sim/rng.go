package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic pseudo-random stream. Every stochastic decision in
// the simulator draws from an RNG derived from the run seed, so a run is a
// pure function of its configuration. Streams are forked by label so that
// adding a consumer does not perturb the draws seen by existing consumers.
type RNG struct {
	r    *rand.Rand
	seed int64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Fork derives an independent stream identified by label. Forking the same
// (seed, label) pair always yields the same stream.
func (g *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	derived := g.seed ^ int64(h.Sum64())
	// Avoid the degenerate all-zero seed.
	if derived == 0 {
		derived = int64(h.Sum64()) | 1
	}
	return NewRNG(derived)
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// IntRange returns a uniform draw in [lo, hi] inclusive.
func (g *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("sim: IntRange with hi < lo")
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Exp returns an exponential draw with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Normal returns a normal draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, sd float64) float64 { return g.r.NormFloat64()*sd + mean }

// LogNormal returns a draw from a log-normal distribution parameterized by
// the mean and standard deviation of the underlying normal.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// ExpDur returns an exponential duration with the given mean, never
// negative.
func (g *RNG) ExpDur(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	return Time(g.r.ExpFloat64() * float64(mean))
}

// UniformDur returns a uniform duration in [lo, hi].
func (g *RNG) UniformDur(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(g.r.Int63n(int64(hi-lo)+1))
}

// NormalDur returns a normal duration clamped at zero.
func (g *RNG) NormalDur(mean, sd Time) Time {
	d := g.r.NormFloat64()*float64(sd) + float64(mean)
	if d < 0 {
		return 0
	}
	return Time(d)
}

// Poisson returns a draw from a Poisson distribution with the given mean.
// Small means use Knuth's product-of-uniforms inversion; large means use
// Hörmann's PTRS transformed-rejection sampler, so the cost per draw is
// O(1) regardless of the mean — the property the aggregate client tier
// depends on when one draw covers thousands of simulated users. Both
// branches consume only this stream, so runs remain reproducible.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= g.r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// PTRS (Hörmann 1993, "The transformed rejection method for
	// generating Poisson random variables").
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := g.r.Float64() - 0.5
		v := g.r.Float64()
		us := 0.5 - math.Abs(u)
		k := int(math.Floor((2*a/us+b)*u + mean + 0.43))
		if us >= 0.07 && v <= vr {
			return k
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(float64(k) + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= float64(k)*logMean-mean-lg {
			return k
		}
	}
}

// Binomial returns a draw from a Binomial(n, p) distribution. Small means
// use CDF-inversion (O(n·p) per draw); large means use the clamped normal
// approximation, whose error is negligible once n·p·(1−p) is in the
// hundreds. The aggregate client tier uses this to thin its warmup pool —
// each emulated user fires its first transaction uniformly in the think
// interval, exactly like an individual client's de-synchronized start.
func (g *RNG) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case p > 0.5:
		// Keep p small so the inversion walk stays short and stable.
		return n - g.Binomial(n, 1-p)
	}
	np := float64(n) * p
	if np < 500 {
		q := 1 - p
		r := p / q
		f := math.Exp(float64(n) * math.Log(q)) // pmf(0)
		u := g.r.Float64()
		acc := f
		k := 0
		for u > acc && k < n {
			f *= r * float64(n-k) / float64(k+1)
			k++
			acc += f
		}
		return k
	}
	d := math.Round(g.r.NormFloat64()*math.Sqrt(np*(1-p)) + np)
	if d < 0 {
		return 0
	}
	if d > float64(n) {
		return n
	}
	return int(d)
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// NURand implements the TPC-C non-uniform random function NURand(A, x, y)
// with a fixed C constant derived from the stream seed, as specified in
// TPC-C clause 2.1.6.
func (g *RNG) NURand(a, x, y int) int {
	c := int(uint64(g.seed) % uint64(a+1))
	return (((g.IntRange(0, a) | g.IntRange(x, y)) + c) % (y - x + 1)) + x
}
