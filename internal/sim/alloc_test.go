package sim

import "testing"

// TestKernelScheduleAllocFree pins the scheduler's steady-state budget:
// once the event pool, slot slab, and heap have warmed up, Schedule plus
// dispatch of a prebound callback performs zero allocations.
func TestKernelScheduleAllocFree(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the pool and heap capacity.
	for i := 0; i < 64; i++ {
		k.Schedule(Microsecond, fn)
	}
	for k.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(Microsecond, fn)
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step: %v allocs/op, want 0", allocs)
	}
}

// TestKernelCancelAllocFree pins cancellation at zero allocations: lazy
// cancel is a slot vacate plus free-list push.
func TestKernelCancelAllocFree(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	for i := 0; i < 64; i++ {
		k.Cancel(k.Schedule(Microsecond, fn))
	}
	for k.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Cancel(k.Schedule(Microsecond, fn))
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Cancel: %v allocs/op, want 0", allocs)
	}
}
