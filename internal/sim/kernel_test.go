package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(30*Millisecond, func() { got = append(got, 3) })
	k.Schedule(10*Millisecond, func() { got = append(got, 1) })
	k.Schedule(20*Millisecond, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30*Millisecond {
		t.Fatalf("Now() = %v, want 30ms", k.Now())
	}
}

func TestKernelTieBreaksByPriorityThenInsertion(t *testing.T) {
	k := NewKernel()
	var got []string
	k.SchedulePri(Millisecond, PriorityLow, func() { got = append(got, "low") })
	k.SchedulePri(Millisecond, PriorityNormal, func() { got = append(got, "n1") })
	k.SchedulePri(Millisecond, PriorityHigh, func() { got = append(got, "high") })
	k.SchedulePri(Millisecond, PriorityNormal, func() { got = append(got, "n2") })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"high", "n1", "n2", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestKernelZeroDelayRunsAtCurrentTime(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Schedule(5*Millisecond, func() {
		k.Schedule(0, func() {
			ran = true
			if k.Now() != 5*Millisecond {
				t.Errorf("zero-delay event at %v, want 5ms", k.Now())
			}
		})
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("zero-delay event never ran")
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	id := k.Schedule(Millisecond, func() { ran = true })
	if !k.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if k.Cancel(id) {
		t.Fatal("Cancel returned true for already-cancelled event")
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
	if k.Executed() != 0 {
		t.Fatalf("Executed() = %d, want 0", k.Executed())
	}
}

func TestKernelCancelFromWithinEvent(t *testing.T) {
	k := NewKernel()
	ran := false
	var id EventID
	id = k.Schedule(2*Millisecond, func() { ran = true })
	k.Schedule(Millisecond, func() {
		if !k.Cancel(id) {
			t.Error("Cancel from handler failed")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("event ran despite cancellation")
	}
}

func TestKernelRunUntilLeavesFutureEvents(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(Millisecond, func() { got = append(got, 1) })
	k.Schedule(10*Millisecond, func() { got = append(got, 2) })
	if err := k.RunUntil(5 * Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want both events", got)
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i)*Millisecond, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	if err := k.Run(); err != ErrHalted {
		t.Fatalf("Run = %v, want ErrHalted", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	NewKernel().Schedule(-1, func() {})
}

func TestKernelScheduleFromHandler(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.Schedule(Microsecond, recurse)
		}
	}
	k.Schedule(0, recurse)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if k.Now() != 99*Microsecond {
		t.Fatalf("Now() = %v, want 99us", k.Now())
	}
}

// Property: for any set of delays, events fire in sorted order and the clock
// never goes backwards.
func TestKernelMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, d := range delays {
			k.Schedule(Time(d)*Microsecond, func() { fired = append(fired, k.Now()) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatalf("Seconds() = %v", (2 * Second).Seconds())
	}
	if (3 * Millisecond).Millis() != 3.0 {
		t.Fatalf("Millis() = %v", (3 * Millisecond).Millis())
	}
	if (Second).Duration().Milliseconds() != 1000 {
		t.Fatalf("Duration() wrong")
	}
}
