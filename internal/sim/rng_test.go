package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGForkIsStableAndIndependent(t *testing.T) {
	base := NewRNG(7)
	f1 := base.Fork("clients")
	f2 := NewRNG(7).Fork("clients")
	for i := 0; i < 100; i++ {
		if f1.Float64() != f2.Float64() {
			t.Fatal("fork with same label not reproducible")
		}
	}
	// Different labels must give different streams (overwhelmingly likely).
	g1 := base.Fork("a")
	g2 := base.Fork("b")
	same := true
	for i := 0; i < 16; i++ {
		if g1.Float64() != g2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forks with different labels produced identical streams")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~5.0", mean)
	}
}

func TestRNGIntRangeBounds(t *testing.T) {
	g := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := g.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seen[v] = true
	}
	for v := 5; v <= 9; v++ {
		if !seen[v] {
			t.Fatalf("IntRange never produced %d", v)
		}
	}
}

func TestRNGExpDurNonNegative(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if d := g.ExpDur(10 * Millisecond); d < 0 {
			t.Fatal("negative duration")
		}
	}
	if g.ExpDur(0) != 0 {
		t.Fatal("ExpDur(0) should be 0")
	}
}

func TestRNGNURandInBounds(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := g.NURand(1023, 1, 3000)
		if v < 1 || v > 3000 {
			t.Fatalf("NURand out of range: %d", v)
		}
	}
}

func TestRNGUniformDurProperty(t *testing.T) {
	f := func(seed int64, a, b uint32) bool {
		g := NewRNG(seed)
		lo, hi := Time(a), Time(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		d := g.UniformDur(lo, hi)
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRNGPoissonMoments checks both samplers — Knuth inversion below mean
// 30 and PTRS above — against the Poisson identities mean = variance = λ.
func TestRNGPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.2, 5, 50, 500} {
		g := NewRNG(17)
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(g.Poisson(mean))
			if v < 0 {
				t.Fatalf("Poisson(%v) returned negative %v", mean, v)
			}
			sum += v
			sumSq += v * v
		}
		m := sum / n
		v := sumSq/n - m*m
		if relErr := math.Abs(m-mean) / mean; relErr > 0.02 {
			t.Fatalf("Poisson(%v) sample mean %v (rel err %v)", mean, m, relErr)
		}
		if relErr := math.Abs(v-mean) / mean; relErr > 0.05 {
			t.Fatalf("Poisson(%v) sample variance %v (rel err %v)", mean, v, relErr)
		}
	}
	if NewRNG(1).Poisson(0) != 0 || NewRNG(1).Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

// TestRNGBinomialMoments checks the inversion walk, the symmetry branch,
// and the large-mean normal approximation against mean np and variance
// np(1-p), plus the degenerate edges.
func TestRNGBinomialMoments(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{
		{100, 0.3},     // inversion
		{50, 0.9},      // symmetry branch
		{100000, 0.02}, // normal approximation (np = 2000)
	} {
		g := NewRNG(23)
		const reps = 50000
		var sum, sumSq float64
		for i := 0; i < reps; i++ {
			v := g.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial(%d, %v) out of range: %d", tc.n, tc.p, v)
			}
			f := float64(v)
			sum += f
			sumSq += f * f
		}
		wantMean := float64(tc.n) * tc.p
		wantVar := wantMean * (1 - tc.p)
		m := sum / reps
		v := sumSq/reps - m*m
		if relErr := math.Abs(m-wantMean) / wantMean; relErr > 0.02 {
			t.Fatalf("Binomial(%d, %v) sample mean %v, want ~%v", tc.n, tc.p, m, wantMean)
		}
		if relErr := math.Abs(v-wantVar) / wantVar; relErr > 0.05 {
			t.Fatalf("Binomial(%d, %v) sample variance %v, want ~%v", tc.n, tc.p, v, wantVar)
		}
	}
	g := NewRNG(1)
	if g.Binomial(10, 0) != 0 || g.Binomial(0, 0.5) != 0 || g.Binomial(-1, 0.5) != 0 {
		t.Fatal("degenerate Binomial must be 0")
	}
	if g.Binomial(10, 1) != 10 || g.Binomial(10, 1.5) != 10 {
		t.Fatal("Binomial with p >= 1 must be n")
	}
}

func TestEmpiricalQuantiles(t *testing.T) {
	e := NewEmpirical([]float64{10, 20, 30, 40, 50})
	if e.Quantile(0) != 10 {
		t.Fatalf("q0 = %v", e.Quantile(0))
	}
	if e.Quantile(1) != 50 {
		t.Fatalf("q1 = %v", e.Quantile(1))
	}
	if e.Quantile(0.5) != 30 {
		t.Fatalf("median = %v", e.Quantile(0.5))
	}
	if e.Quantile(0.25) != 20 {
		t.Fatalf("q25 = %v", e.Quantile(0.25))
	}
	if e.Mean() != 30 {
		t.Fatalf("mean = %v", e.Mean())
	}
	if e.Min() != 10 || e.Max() != 50 {
		t.Fatal("min/max wrong")
	}
}

func TestEmpiricalSampleWithinRange(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := e.Sample(g)
		if v < 1 || v > 9 {
			t.Fatalf("sample out of range: %v", v)
		}
	}
}

func TestEmpiricalSingleSample(t *testing.T) {
	e := NewEmpirical([]float64{7})
	g := NewRNG(1)
	for i := 0; i < 10; i++ {
		if e.Sample(g) != 7 {
			t.Fatal("single-sample distribution must be constant")
		}
	}
}

func TestEmpiricalEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty samples")
		}
	}()
	NewEmpirical(nil)
}

// Property: quantile is monotone in q.
func TestEmpiricalMonotoneProperty(t *testing.T) {
	e := NewEmpirical([]float64{5, 1, 8, 2, 2, 9, 4})
	f := func(a, b float64) bool {
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return e.Quantile(qa) <= e.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
