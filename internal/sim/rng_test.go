package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGForkIsStableAndIndependent(t *testing.T) {
	base := NewRNG(7)
	f1 := base.Fork("clients")
	f2 := NewRNG(7).Fork("clients")
	for i := 0; i < 100; i++ {
		if f1.Float64() != f2.Float64() {
			t.Fatal("fork with same label not reproducible")
		}
	}
	// Different labels must give different streams (overwhelmingly likely).
	g1 := base.Fork("a")
	g2 := base.Fork("b")
	same := true
	for i := 0; i < 16; i++ {
		if g1.Float64() != g2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forks with different labels produced identical streams")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~5.0", mean)
	}
}

func TestRNGIntRangeBounds(t *testing.T) {
	g := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := g.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seen[v] = true
	}
	for v := 5; v <= 9; v++ {
		if !seen[v] {
			t.Fatalf("IntRange never produced %d", v)
		}
	}
}

func TestRNGExpDurNonNegative(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if d := g.ExpDur(10 * Millisecond); d < 0 {
			t.Fatal("negative duration")
		}
	}
	if g.ExpDur(0) != 0 {
		t.Fatal("ExpDur(0) should be 0")
	}
}

func TestRNGNURandInBounds(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := g.NURand(1023, 1, 3000)
		if v < 1 || v > 3000 {
			t.Fatalf("NURand out of range: %d", v)
		}
	}
}

func TestRNGUniformDurProperty(t *testing.T) {
	f := func(seed int64, a, b uint32) bool {
		g := NewRNG(seed)
		lo, hi := Time(a), Time(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		d := g.UniformDur(lo, hi)
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalQuantiles(t *testing.T) {
	e := NewEmpirical([]float64{10, 20, 30, 40, 50})
	if e.Quantile(0) != 10 {
		t.Fatalf("q0 = %v", e.Quantile(0))
	}
	if e.Quantile(1) != 50 {
		t.Fatalf("q1 = %v", e.Quantile(1))
	}
	if e.Quantile(0.5) != 30 {
		t.Fatalf("median = %v", e.Quantile(0.5))
	}
	if e.Quantile(0.25) != 20 {
		t.Fatalf("q25 = %v", e.Quantile(0.25))
	}
	if e.Mean() != 30 {
		t.Fatalf("mean = %v", e.Mean())
	}
	if e.Min() != 10 || e.Max() != 50 {
		t.Fatal("min/max wrong")
	}
}

func TestEmpiricalSampleWithinRange(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := e.Sample(g)
		if v < 1 || v > 9 {
			t.Fatalf("sample out of range: %v", v)
		}
	}
}

func TestEmpiricalSingleSample(t *testing.T) {
	e := NewEmpirical([]float64{7})
	g := NewRNG(1)
	for i := 0; i < 10; i++ {
		if e.Sample(g) != 7 {
			t.Fatal("single-sample distribution must be constant")
		}
	}
}

func TestEmpiricalEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty samples")
		}
	}()
	NewEmpirical(nil)
}

// Property: quantile is monotone in q.
func TestEmpiricalMonotoneProperty(t *testing.T) {
	e := NewEmpirical([]float64{5, 1, 8, 2, 2, 9, 4})
	f := func(a, b float64) bool {
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return e.Quantile(qa) <= e.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
