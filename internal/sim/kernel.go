package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Priority orders events that share a timestamp. Lower values run first.
// It exists so that infrastructure events (e.g. freeing a CPU) can be
// ordered deterministically against user events at the same instant.
type Priority int

// Priority bands. The exact values are arbitrary; only relative order
// matters. They are spaced so callers can slot custom bands in between.
const (
	PriorityHigh   Priority = 10
	PriorityNormal Priority = 20
	PriorityLow    Priority = 30
)

// EventID identifies a scheduled event so it can be cancelled.
// The zero value is never a valid ID.
type EventID int64

// ErrHalted is returned by Run and RunUntil when the kernel was stopped
// explicitly via Stop.
var ErrHalted = errors.New("sim: kernel halted")

type event struct {
	at   Time
	pri  Priority
	seq  int64 // insertion order; tie-breaker for determinism
	id   EventID
	fn   func()
	heap int // index in the heap, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap = i
	h[j].heap = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.heap = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.heap = -1
	*h = old[:n-1]
	return ev
}

// Kernel is a single-threaded discrete-event scheduler.
//
// The zero value is not usable; construct with NewKernel. A Kernel must be
// driven from a single goroutine; it performs no locking.
type Kernel struct {
	now      Time
	events   eventHeap
	nextSeq  int64
	nextID   EventID
	live     map[EventID]*event
	halted   bool
	running  bool
	executed int64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{live: make(map[EventID]*event)}
}

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have been dispatched so far.
func (k *Kernel) Executed() int64 { return k.executed }

// Pending reports how many events are currently scheduled.
func (k *Kernel) Pending() int { return len(k.live) }

// Schedule arranges for fn to run after delay (which may be zero) at normal
// priority, returning an ID usable with Cancel. Negative delays are an
// error: scheduling into the past would break causality, so Schedule panics,
// as this always indicates a bug in the calling model.
func (k *Kernel) Schedule(delay Time, fn func()) EventID {
	return k.SchedulePri(delay, PriorityNormal, fn)
}

// ScheduleAt is Schedule with an absolute timestamp, which must not precede
// the current time.
func (k *Kernel) ScheduleAt(at Time, fn func()) EventID {
	return k.SchedulePriAt(at, PriorityNormal, fn)
}

// SchedulePri is Schedule with an explicit priority band.
func (k *Kernel) SchedulePri(delay Time, pri Priority, fn func()) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return k.SchedulePriAt(k.now+delay, pri, fn)
}

// SchedulePriAt is ScheduleAt with an explicit priority band.
func (k *Kernel) SchedulePriAt(at Time, pri Priority, fn func()) EventID {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	k.nextSeq++
	k.nextID++
	ev := &event{at: at, pri: pri, seq: k.nextSeq, id: k.nextID, fn: fn}
	heap.Push(&k.events, ev)
	k.live[ev.id] = ev
	return ev.id
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already ran, was cancelled, or never existed).
func (k *Kernel) Cancel(id EventID) bool {
	ev, ok := k.live[id]
	if !ok {
		return false
	}
	delete(k.live, id)
	if ev.heap >= 0 {
		heap.Remove(&k.events, ev.heap)
	}
	ev.fn = nil
	return true
}

// Step dispatches the next pending event, if any, and reports whether one
// was dispatched.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		ev := heap.Pop(&k.events).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		delete(k.live, ev.id)
		if ev.at < k.now {
			panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", ev.at, k.now))
		}
		k.now = ev.at
		k.executed++
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run dispatches events until none remain or Stop is called. It returns
// ErrHalted if stopped, nil otherwise.
func (k *Kernel) Run() error {
	return k.RunUntil(Time(1<<63 - 1))
}

// RunUntil dispatches events with timestamps at or before limit. The clock
// is left at the time of the last dispatched event (it does not jump to
// limit). Returns ErrHalted if Stop was called.
func (k *Kernel) RunUntil(limit Time) error {
	if k.running {
		return errors.New("sim: kernel already running")
	}
	k.running = true
	k.halted = false
	defer func() { k.running = false }()
	for len(k.events) > 0 && !k.halted {
		next := k.events[0]
		if next.fn == nil {
			heap.Pop(&k.events)
			continue
		}
		if next.at > limit {
			return nil
		}
		k.Step()
	}
	if k.halted {
		return ErrHalted
	}
	return nil
}

// Stop halts Run/RunUntil after the current event completes. It is safe to
// call from within an event handler.
func (k *Kernel) Stop() { k.halted = true }
