package sim

import (
	"errors"
	"fmt"
)

// Priority orders events that share a timestamp. Lower values run first.
// It exists so that infrastructure events (e.g. freeing a CPU) can be
// ordered deterministically against user events at the same instant.
type Priority int

// Priority bands. The exact values are arbitrary; only relative order
// matters. They are spaced so callers can slot custom bands in between.
// Priorities must lie in [0, 1<<15): they are packed next to the insertion
// sequence in one comparison key.
const (
	PriorityHigh   Priority = 10
	PriorityNormal Priority = 20
	PriorityLow    Priority = 30
)

// maxPriority bounds the packable priority range.
const maxPriority = 1<<15 - 1

// EventID identifies a scheduled event so it can be cancelled. It encodes
// the event's slot and a per-slot generation, so lookup is two array reads —
// no hashing on the scheduling hot path. The zero value is never a valid ID
// (generations start at 1).
type EventID int64

// ErrHalted is returned by Run and RunUntil when the kernel was stopped
// explicitly via Stop.
var ErrHalted = errors.New("sim: kernel halted")

// event is one binary-heap node. It deliberately contains no pointers: heap
// sifts are plain 24-byte moves with no write barriers, and the garbage
// collector never scans the queue. The event body (its callback) lives in
// the slot slab; gen detects stale nodes left behind by lazy cancellation.
type event struct {
	at   Time
	key  int64 // priority<<48 | insertion sequence: total order tie-breaker
	slot uint32
	gen  uint32
}

// before is the heap order: (at, pri, seq) lexicographically, with pri and
// seq packed into key. seq makes the order total, so the dispatch sequence
// is independent of the heap's internal arrangement.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.key < o.key
}

// slotEntry holds a scheduled event's callback. gen increments every time
// the slot is vacated (dispatch or cancel), invalidating outstanding
// EventIDs and any stale heap node still referring to the slot.
type slotEntry struct {
	fn  func()
	gen uint32
}

// Kernel is a single-threaded discrete-event scheduler.
//
// The zero value is not usable; construct with NewKernel. A Kernel must be
// driven from a single goroutine; it performs no locking.
type Kernel struct {
	now       Time
	events    []event // binary heap ordered by event.before
	slots     []slotEntry
	freeSlots []uint32
	nextSeq   int64
	live      int // scheduled and not yet dispatched or cancelled
	halted    bool
	running   bool
	executed  int64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have been dispatched so far.
func (k *Kernel) Executed() int64 { return k.executed }

// Pending reports how many events are currently scheduled.
func (k *Kernel) Pending() int { return k.live }

// Schedule arranges for fn to run after delay (which may be zero) at normal
// priority, returning an ID usable with Cancel. Negative delays are an
// error: scheduling into the past would break causality, so Schedule panics,
// as this always indicates a bug in the calling model.
//
//hot:path
func (k *Kernel) Schedule(delay Time, fn func()) EventID {
	return k.SchedulePri(delay, PriorityNormal, fn)
}

// ScheduleAt is Schedule with an absolute timestamp, which must not precede
// the current time.
//
//hot:path
func (k *Kernel) ScheduleAt(at Time, fn func()) EventID {
	return k.SchedulePriAt(at, PriorityNormal, fn)
}

// SchedulePri is Schedule with an explicit priority band.
//
//hot:path
func (k *Kernel) SchedulePri(delay Time, pri Priority, fn func()) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return k.SchedulePriAt(k.now+delay, pri, fn)
}

// SchedulePriAt is ScheduleAt with an explicit priority band.
//
//hot:path
func (k *Kernel) SchedulePriAt(at Time, pri Priority, fn func()) EventID {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	if pri < 0 || pri > maxPriority {
		panic(fmt.Sprintf("sim: priority %d outside [0, %d]", pri, maxPriority))
	}
	var slot uint32
	if n := len(k.freeSlots); n > 0 {
		slot = k.freeSlots[n-1]
		k.freeSlots = k.freeSlots[:n-1]
	} else {
		k.slots = append(k.slots, slotEntry{gen: 1})
		slot = uint32(len(k.slots) - 1)
	}
	s := &k.slots[slot]
	s.fn = fn
	k.nextSeq++
	k.push(event{at: at, key: int64(pri)<<48 | k.nextSeq, slot: slot, gen: s.gen})
	k.live++
	return EventID(int64(slot)<<32 | int64(s.gen))
}

// The queue is a 4-ary heap: half the depth of a binary heap, so pops — the
// hot operation of the dispatch loop — touch fewer cache lines, and the four
// children of a node share two cache lines. The comparator is total (seq
// tie-break), so the dispatch order is identical whatever the arity.

// push appends ev and restores the heap invariant (sift up).
//
//hot:path
func (k *Kernel) push(ev event) {
	//lint:hotalloc-ok amortised heap growth; the backing array is reused across pops
	h := append(k.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
	k.events = h
}

// pop removes and returns the heap minimum (sift down). The heap must be
// non-empty.
//
//hot:path
func (k *Kernel) pop() event {
	h := k.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	k.events = h
	if n > 0 {
		i := 0
		for {
			child := 4*i + 1
			if child >= n {
				break
			}
			end := min(child+4, n)
			for c := child + 1; c < end; c++ {
				if h[c].before(h[child]) {
					child = c
				}
			}
			if !h[child].before(last) {
				break
			}
			h[i] = h[child]
			i = child
		}
		h[i] = last
	}
	return top
}

// vacate clears a slot after dispatch or cancellation: the generation bump
// invalidates the slot's EventID and any stale heap node, and the slot
// returns to the free list for reuse.
func (k *Kernel) vacate(slot uint32) {
	s := &k.slots[slot]
	s.fn = nil
	s.gen++
	if s.gen == 0 { // wrapped: 0 is reserved for "never valid"
		s.gen = 1
	}
	k.freeSlots = append(k.freeSlots, slot)
	k.live--
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already ran, was cancelled, or never existed).
// Cancellation is lazy: the slot is freed immediately but the heap node
// stays queued until popped, where the generation mismatch discards it —
// keeping Cancel O(1) with no heap surgery.
//
//hot:path
func (k *Kernel) Cancel(id EventID) bool {
	slot := uint32(id >> 32)
	gen := uint32(id)
	if int(slot) >= len(k.slots) {
		return false
	}
	if s := &k.slots[slot]; s.gen != gen || s.fn == nil {
		return false
	}
	k.vacate(slot)
	return true
}

// stale reports whether a popped or peeked node was cancelled (its slot has
// moved on).
func (k *Kernel) stale(ev event) bool {
	s := &k.slots[ev.slot]
	return s.gen != ev.gen || s.fn == nil
}

// Step dispatches the next pending event, if any, and reports whether one
// was dispatched.
//
//hot:path
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		ev := k.pop()
		if k.stale(ev) {
			continue
		}
		if ev.at < k.now {
			panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", ev.at, k.now))
		}
		fn := k.slots[ev.slot].fn
		k.vacate(ev.slot)
		k.now = ev.at
		k.executed++
		fn()
		return true
	}
	return false
}

// Run dispatches events until none remain or Stop is called. It returns
// ErrHalted if stopped, nil otherwise.
func (k *Kernel) Run() error {
	return k.RunUntil(Time(1<<63 - 1))
}

// RunUntil dispatches events with timestamps at or before limit. The clock
// is left at the time of the last dispatched event (it does not jump to
// limit). Returns ErrHalted if Stop was called.
func (k *Kernel) RunUntil(limit Time) error {
	if k.running {
		return errors.New("sim: kernel already running")
	}
	k.running = true
	k.halted = false
	defer func() { k.running = false }()
	for len(k.events) > 0 && !k.halted {
		next := k.events[0]
		if k.stale(next) {
			k.pop()
			continue
		}
		if next.at > limit {
			return nil
		}
		k.Step()
	}
	if k.halted {
		return ErrHalted
	}
	return nil
}

// Stop halts Run/RunUntil after the current event completes. It is safe to
// call from within an event handler.
func (k *Kernel) Stop() { k.halted = true }
