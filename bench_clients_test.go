package repro

// Aggregate client tier benchmarks: the population sweep of `experiments
// clients` at fixed transaction budget. CI runs these with -json into
// BENCH_clients.json so the scaling claim of the aggregate arrival-process
// tier is tracked per commit: events/s, wall clock normalized per simulated
// minute, and allocations, from 10^3 to 10^6 emulated users on 3 sites.
// Memory and startup cost must stay O(sites + in-flight) — a population
// regression shows up as allocs/op or wall-clock exploding with the client
// count.

import (
	"testing"
	"time"

	"repro/internal/core"
)

// clientsCfg builds one population point: 3 sites, aggregate tier forced on,
// admission control bounding the overload the larger populations offer.
func clientsCfg(clients int) core.Config {
	return core.Config{
		Sites:            3,
		CPUsPerSite:      1,
		Clients:          clients,
		AggregateClients: 1,
		Admission:        core.DefaultAdmissionConfig(),
		TotalTxns:        2000,
	}
}

// reportClients attaches the scaling envelope: throughput, and host wall
// clock normalized by the simulated duration (the figure of merit for
// simulating long windows of very large populations).
func reportClients(r *core.Results, b *testing.B) {
	b.ReportMetric(r.TPM, "tpm")
	b.ReportMetric(r.MeanLatencyMS, "lat-ms")
	if simMin := r.Duration.Seconds() / 60; simMin > 0 {
		b.ReportMetric(float64(b.Elapsed())/float64(time.Second)/simMin, "wall-s/sim-min")
	}
	requireNoDrops(r, b)
}

func BenchmarkClients1k(b *testing.B) {
	benchRun(b, clientsCfg(1_000), reportClients)
}

func BenchmarkClients10k(b *testing.B) {
	benchRun(b, clientsCfg(10_000), reportClients)
}

func BenchmarkClients100k(b *testing.B) {
	benchRun(b, clientsCfg(100_000), reportClients)
}

func BenchmarkClients1M(b *testing.B) {
	benchRun(b, clientsCfg(1_000_000), reportClients)
}

// BenchmarkClientsIndividual1k is the comparison point the aggregate tier
// replaces: the same 10^3-client workload built from per-client objects.
// (Larger individual populations are exactly what the tier exists to avoid.)
func BenchmarkClientsIndividual1k(b *testing.B) {
	cfg := clientsCfg(1_000)
	cfg.AggregateClients = 0
	benchRun(b, cfg, reportClients)
}
