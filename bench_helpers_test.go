package repro

import (
	"repro/internal/csrt"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// newSimNetPair wires two hosts with runtimes on one simulated LAN, the
// minimal topology for protocol micro-benchmarks.
func newSimNetPair(k *sim.Kernel, rng *sim.RNG) *benchNet {
	net := simnet.NewNetwork(k, rng.Fork("net"))
	lan := net.NewLAN(simnet.DefaultLANConfig("bench"))
	h1, err := net.NewHost(1, lan)
	if err != nil {
		panic(err)
	}
	h2, err := net.NewHost(2, lan)
	if err != nil {
		panic(err)
	}
	rt1 := csrt.NewRuntime(k, 1, &csrt.ModelProfiler{}, net.Port(1, 1400), csrt.DefaultCostParams(), rng.Fork("rt1"))
	rt1.Bind(csrt.NewCPUSet(1, k, nil))
	rt2 := csrt.NewRuntime(k, 2, &csrt.ModelProfiler{}, net.Port(2, 1400), csrt.DefaultCostParams(), rng.Fork("rt2"))
	rt2.Bind(csrt.NewCPUSet(1, k, nil))
	h1.SetDeliver(func(pkt *simnet.Packet) { rt1.Deliver(pkt.Src, pkt.Data) })
	h2.SetDeliver(func(pkt *simnet.Packet) { rt2.Deliver(pkt.Src, pkt.Data) })
	return &benchNet{rt1: rt1, rt2: rt2}
}
