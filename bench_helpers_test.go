package repro

// Shared benchmark plumbing. Every bench in this package builds a
// core.Config, runs the model once per iteration, and attaches custom
// metrics via b.ReportMetric; the construct-run-verify loop, the common
// reporters, and the micro-benchmark network fixture live here so the
// per-table bench files hold only their configurations and the series the
// corresponding figure plots.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/csrt"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// benchModel constructs and runs one model, failing the benchmark on a
// construction error, a run error, or a safety violation.
func benchModel(b *testing.B, cfg core.Config) *core.Results {
	b.Helper()
	m, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		b.Fatal(err)
	}
	if r.SafetyErr != nil {
		b.Fatalf("safety: %v", r.SafetyErr)
	}
	return r
}

// requireNoDrops fails the benchmark if any certification payload was
// dropped or failed to parse: the protocol benches treat either as a
// correctness regression, not a performance data point.
func requireNoDrops(r *core.Results, b *testing.B) {
	b.Helper()
	if r.CertDrops != 0 || r.GCS.ParseErrors != 0 {
		b.Fatalf("payload drops: cert=%d parse=%d", r.CertDrops, r.GCS.ParseErrors)
	}
}

// benchRun executes one model configuration per iteration and reports the
// headline metrics.
func benchRun(b *testing.B, cfg core.Config, metric func(*core.Results, *testing.B)) {
	b.Helper()
	if cfg.TotalTxns == 0 {
		cfg.TotalTxns = 1000
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(42 + i)
		r := benchModel(b, cfg)
		if i == 0 {
			metric(r, b)
			b.ReportMetric(float64(r.Events)/(b.Elapsed().Seconds()+1e-9), "events/s")
		}
	}
}

func reportPerf(r *core.Results, b *testing.B) {
	b.ReportMetric(r.TPM, "tpm")
	b.ReportMetric(r.MeanLatencyMS, "lat-ms")
	b.ReportMetric(r.AbortRatePct, "abort-%")
}

func reportUsage(r *core.Results, b *testing.B) {
	b.ReportMetric(r.CPUUtilPct, "cpu-%")
	b.ReportMetric(r.DiskUtilPct, "disk-%")
	b.ReportMetric(r.NetKBps, "net-KB/s")
}

// classAbort returns the abort rate of one transaction class, 0 if the run
// recorded none of it.
func classAbort(r *core.Results, name string) float64 {
	for _, c := range r.Classes {
		if c.Name == name {
			return c.AbortRatePct
		}
	}
	return 0
}

// lossy is the 5% random-loss fault load several ablations and fault benches
// run under.
func lossy() faults.Config {
	return faults.Config{Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.05}}
}

type benchNet struct {
	rt1, rt2 *csrt.Runtime
}

// newSimNetPair wires two hosts with runtimes on one simulated LAN, the
// minimal topology for protocol micro-benchmarks.
func newSimNetPair(k *sim.Kernel, rng *sim.RNG) *benchNet {
	net := simnet.NewNetwork(k, rng.Fork("net"))
	lan := net.NewLAN(simnet.DefaultLANConfig("bench"))
	h1, err := net.NewHost(1, lan)
	if err != nil {
		panic(err)
	}
	h2, err := net.NewHost(2, lan)
	if err != nil {
		panic(err)
	}
	rt1 := csrt.NewRuntime(k, 1, &csrt.ModelProfiler{}, net.Port(1, 1400), csrt.DefaultCostParams(), rng.Fork("rt1"))
	rt1.Bind(csrt.NewCPUSet(1, k, nil))
	rt2 := csrt.NewRuntime(k, 2, &csrt.ModelProfiler{}, net.Port(2, 1400), csrt.DefaultCostParams(), rng.Fork("rt2"))
	rt2.Bind(csrt.NewCPUSet(1, k, nil))
	h1.SetDeliver(func(pkt *simnet.Packet) { rt1.Deliver(pkt.Src, pkt.Data) })
	h2.SetDeliver(func(pkt *simnet.Packet) { rt2.Deliver(pkt.Src, pkt.Data) })
	return &benchNet{rt1: rt1, rt2: rt2}
}
