package repro

// Ablation benchmarks for the design choices the paper discusses:
//
//   - buffer pool size (Section 5.3: "mitigated by increasing available
//     buffer space")
//   - dedicated sequencer (Section 5.3's other mitigation)
//   - table-lock threshold (Section 3.3: smaller messages, coarser conflicts)
//   - partial replication degree (Section 5.2: the disk bottleneck)
//   - dissemination mode (IP multicast vs unicast fallback, Section 3.4)

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gcs"
)

func BenchmarkAblationBufferSmall(b *testing.B) {
	cfg := core.Config{
		Sites: 3, Clients: 500, Faults: lossy(),
		GCSTweak: func(c *gcs.Config) { c.BufferBytes = 48 * 1024 },
	}
	benchRun(b, cfg, func(r *core.Results, b *testing.B) {
		b.ReportMetric(float64(r.GCS.Blocked), "blocked")
		b.ReportMetric(r.CertLat.Quantile(0.99), "cert-p99-ms")
	})
}

func BenchmarkAblationBufferLarge(b *testing.B) {
	cfg := core.Config{
		Sites: 3, Clients: 500, Faults: lossy(),
		GCSTweak: func(c *gcs.Config) { c.BufferBytes = 1 << 20 },
	}
	benchRun(b, cfg, func(r *core.Results, b *testing.B) {
		b.ReportMetric(float64(r.GCS.Blocked), "blocked")
		b.ReportMetric(r.CertLat.Quantile(0.99), "cert-p99-ms")
	})
}

func BenchmarkAblationDedicatedSequencer(b *testing.B) {
	cfg := core.Config{
		Sites: 3, Clients: 500, Faults: lossy(),
		DedicatedSequencer: true,
		GCSTweak:           func(c *gcs.Config) { c.BufferBytes = 64 * 1024 },
	}
	benchRun(b, cfg, func(r *core.Results, b *testing.B) {
		b.ReportMetric(float64(r.GCS.Blocked), "blocked")
		b.ReportMetric(r.TPM, "tpm")
	})
}

func BenchmarkAblationTableLockThreshold(b *testing.B) {
	cfg := core.Config{Sites: 3, Clients: 300, ReadSetThreshold: 3}
	benchRun(b, cfg, func(r *core.Results, b *testing.B) {
		b.ReportMetric(r.AbortRatePct, "abort-%")
		b.ReportMetric(r.NetKBps, "net-KB/s")
	})
}

func BenchmarkAblationPartialReplication(b *testing.B) {
	cfg := core.Config{Sites: 6, Clients: 600, ReplicationDegree: 2}
	benchRun(b, cfg, func(r *core.Results, b *testing.B) {
		b.ReportMetric(r.DiskUtilPct, "disk-%")
		b.ReportMetric(r.TPM, "tpm")
	})
}

func BenchmarkAblationFullReplication(b *testing.B) {
	cfg := core.Config{Sites: 6, Clients: 600}
	benchRun(b, cfg, func(r *core.Results, b *testing.B) {
		b.ReportMetric(r.DiskUtilPct, "disk-%")
		b.ReportMetric(r.TPM, "tpm")
	})
}

func BenchmarkAblationUnicastFallback(b *testing.B) {
	cfg := core.Config{
		Sites: 3, Clients: 300,
		GCSTweak: func(c *gcs.Config) { c.UseMulticast = false },
	}
	benchRun(b, cfg, func(r *core.Results, b *testing.B) {
		b.ReportMetric(r.NetKBps, "net-KB/s")
	})
}
