// Quickstart: simulate a replicated database of 3 sites driven by 300 TPC-C
// clients, and print the headline metrics of the paper's evaluation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Configure the model: 3 single-CPU replicas on an Ethernet-100 LAN,
	// 300 emulated clients, stopping after 3000 submitted transactions.
	// Everything else (PostgreSQL-calibrated cost model, TPC-C workload
	// mix, group communication tuning) uses the paper's defaults.
	model, err := core.New(core.Config{
		Sites:       3,
		CPUsPerSite: 1,
		Clients:     300,
		TotalTxns:   3000,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}

	results, err := model.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %.1fs of operation (%d events)\n",
		results.Duration.Seconds(), results.Events)
	fmt.Printf("throughput : %.0f committed transactions per minute\n", results.TPM)
	fmt.Printf("latency    : %.1f ms mean, %.1f ms p95\n",
		results.MeanLatencyMS, results.P95LatencyMS)
	fmt.Printf("abort rate : %.2f%%\n", results.AbortRatePct)
	fmt.Printf("resources  : cpu %.1f%% (protocol %.2f%%), disk %.1f%%, net %.1f KB/s\n",
		results.CPUUtilPct, results.CPURealUtilPct, results.DiskUtilPct, results.NetKBps)

	fmt.Println("\nabort breakdown per transaction class:")
	for _, c := range results.Classes {
		fmt.Printf("  %-18s %6.2f%%  (%d submitted)\n", c.Name, c.AbortRatePct, c.Submitted)
	}

	// The paper's safety condition: all operational sites committed
	// exactly the same sequence of transactions.
	if results.SafetyErr != nil {
		log.Fatalf("SAFETY VIOLATION: %v", results.SafetyErr)
	}
	fmt.Println("\nsafety: all sites committed identical transaction sequences")
}
