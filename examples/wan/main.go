// Wide-area example: run the group communication prototype over a simulated
// WAN — two datacenter LANs joined by a 10 Mbit/s, 20 ms link — using the
// unicast fallback the paper describes for wide-area deployments, and
// measure how total order inflates delivery latency for remote messages.
//
// This exercises the protocol layers directly (gcs + csrt + simnet), the
// same way the paper's tool stresses early implementations in environments
// that would be costly to set up for real (Section 5.2 suggests wide-area
// deployment; Section 5.3 shows why total order is the obstacle).
//
// Run with: go run ./examples/wan
package main

import (
	"fmt"
	"log"

	"repro/internal/csrt"
	"repro/internal/gcs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func main() {
	k := sim.NewKernel()
	rng := sim.NewRNG(99)
	net := simnet.NewNetwork(k, rng.Fork("net"))

	// Two datacenters, 20ms apart.
	dcEast := net.NewLAN(simnet.DefaultLANConfig("dc-east"))
	dcWest := net.NewLAN(simnet.DefaultLANConfig("dc-west"))
	net.Connect(dcEast, dcWest, simnet.LinkConfig{
		BandwidthBps: 10e6,
		Delay:        20 * sim.Millisecond,
	})

	// Four members: 1,2 east; 3,4 west.
	members := []gcs.NodeID{1, 2, 3, 4}
	net.SetGroup(1, members)
	lanOf := map[gcs.NodeID]*simnet.LAN{1: dcEast, 2: dcEast, 3: dcWest, 4: dcWest}

	stacks := make(map[gcs.NodeID]*gcs.Stack, len(members))
	rts := make(map[gcs.NodeID]*csrt.Runtime, len(members))
	sendTimes := make(map[string]sim.Time)
	var localLat, remoteLat, optLat metrics.Sample

	for _, id := range members {
		host, err := net.NewHost(id, lanOf[id])
		if err != nil {
			log.Fatal(err)
		}
		rt := csrt.NewRuntime(k, id, &csrt.ModelProfiler{}, net.Port(id, 1400),
			csrt.DefaultCostParams(), rng.Fork(fmt.Sprintf("rt-%d", id)))
		rt.Bind(csrt.NewCPUSet(1, k, nil))
		host.SetDeliver(func(pkt *simnet.Packet) { rt.Deliver(pkt.Src, pkt.Data) })

		stack, err := gcs.New(rt, gcs.Config{
			Self:    id,
			Members: members,
			Group:   1,
			// The paper's prototype falls back to unicast outside
			// IP-multicast-capable LANs.
			UseMulticast: false,
			// WAN tuning: pace first transmissions under the link
			// capacity and allow deeper buffering for the
			// bandwidth-delay product.
			RateBps:     1_000_000,
			BufferBytes: 1 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		self := id
		stack.OnDeliver(func(d gcs.Delivery) {
			if self != 3 {
				return // observe at a west member, far from the sequencer
			}
			key := string(d.Payload)
			lat := k.Now() - sendTimes[key]
			if d.Sender <= 2 {
				localLat.Add(lat.Millis())
			} else {
				remoteLat.Add(lat.Millis())
			}
		})
		stack.OnOptimistic(func(d gcs.OptDelivery) {
			if self != 3 {
				return
			}
			optLat.Add((k.Now() - sendTimes[string(d.Payload)]).Millis())
		})
		stacks[id] = stack
		rts[id] = rt
		stack.Start()
	}

	// Every member multicasts 100 small messages, 20ms apart.
	for i := 0; i < 100; i++ {
		for _, id := range members {
			payload := []byte(fmt.Sprintf("%d-%d", id, i))
			at := sim.Time(i+1) * 20 * sim.Millisecond
			sender := id
			k.ScheduleAt(at, func() {
				sendTimes[string(payload)] = k.Now()
				rts[sender].CPUs().SubmitReal(func() {
					stacks[sender].Multicast(payload)
				}, nil)
			})
		}
	}
	if err := k.RunUntil(30 * sim.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("wide-area atomic multicast, observed at a west-coast member")
	fmt.Println("(the fixed sequencer lives in the east datacenter):")
	fmt.Printf("  east (cross-DC) senders : mean %6.1f ms, p95 %6.1f ms (n=%d)\n",
		localLat.Mean(), localLat.Quantile(0.95), localLat.N())
	fmt.Printf("  west (same-DC) senders  : mean %6.1f ms, p95 %6.1f ms (n=%d)\n",
		remoteLat.Mean(), remoteLat.Quantile(0.95), remoteLat.N())
	fmt.Println("\neven same-LAN messages pay wide-area round trips, because the")
	fmt.Println("fixed sequencer must order every message: the result that leads")
	fmt.Println("the paper to call for relaxing total order (or optimistic total")
	fmt.Println("order) before deploying the DBSM across wide-area networks.")

	final := &metrics.Sample{}
	for _, v := range localLat.Values() {
		final.Add(v)
	}
	for _, v := range remoteLat.Values() {
		final.Add(v)
	}
	var mispred int64
	for _, id := range members {
		mispred += stacks[id].Stats().Mispredicted
	}
	fmt.Printf("\noptimistic total order (the paper's §7 direction):\n")
	fmt.Printf("  tentative delivery mean : %6.1f ms\n", optLat.Mean())
	fmt.Printf("  final delivery mean     : %6.1f ms  (%.0f ms saved optimistically)\n",
		final.Mean(), final.Mean()-optLat.Mean())
	fmt.Printf("  order mispredictions    : %d of %d deliveries across all members\n",
		mispred, 4*optLat.N())

	for _, id := range members {
		if d := stacks[id].Stats().Delivered; d != 400 {
			log.Fatalf("member %d delivered %d messages, want 400", id, d)
		}
	}
	fmt.Println("\nall 4 members delivered all 400 messages in the same total order.")
}
