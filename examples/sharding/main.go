// Sharding example: partial replication with per-warehouse replication
// groups. Nine sites form three groups of three; each group runs its own
// group-communication stack and total order, and owns a third of the TPC-C
// warehouses. A transaction touching only its home stripe commits through
// its group's order alone — so the three orders run concurrently and
// aggregate throughput scales with the group count. The ~7% of transactions
// whose payment touches a remote warehouse commit through the cross-group
// commit round: the home group orders a prepare, relays carry it to each
// remote group's order, every group votes on its own stripe, and the
// transaction commits only if every group voted yes.
//
// Mid-run, the lowest-numbered site of group 2 — that group's sequencer,
// and the home member coordinating its in-flight cross-group rounds —
// crashes. The survivors install a new view, a surviving home member takes
// the orphaned rounds over from the stored votes, and 5% message loss
// forces the coordinator's retransmit timer to recover lost relays. At the
// end the checker verifies each group's sites committed identical
// sequences, that no transaction committed in one group and aborted in
// another, and that the union of all group orders stays serializable.
//
// Run with: go run ./examples/sharding
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func main() {
	model, err := core.New(core.Config{
		// Three groups of three sites each: sites 1-3 are group 1,
		// 4-6 group 2, 7-9 group 3. Warehouse w lives on group w%3+1.
		Sites:       3,
		Groups:      3,
		CPUsPerSite: 1,
		Clients:     450, // 50 per site, spread across every group
		TotalTxns:   4500,
		Seed:        7,
		Faults: faults.Config{
			// Relays between groups are raw datagrams; loss exercises the
			// cross-group retransmit path.
			Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.05},
			// Group 2's sequencer and cross-group coordinator dies mid-run;
			// sites 5 and 6 keep the group (and its stripe) available.
			Crashes: []faults.Crash{{Site: 4, At: 20 * sim.Second}},
		},
		MaxSimTime: 10 * sim.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := model.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run finished after %.1fs simulated\n", results.Duration.Seconds())
	fmt.Printf("committed %d transactions at %.0f tpm across %d replication groups\n",
		results.Committed, results.TPM, results.Groups)
	fmt.Printf("multi-group transactions: %d committed, %d aborted (%.1f%% of commits)\n",
		results.MultiGroupCommitted, results.MultiGroupAborted, results.MultiGroupPct)
	fmt.Printf("cross-group round: %d relay retransmits, %d coordinator handovers\n",
		results.XRetries, results.XHandovers)

	group := 0
	for _, s := range results.Sites {
		if s.Group != group {
			group = s.Group
			fmt.Printf("group %d:\n", group)
		}
		status := "operational"
		if s.Crashed {
			status = "CRASHED (survivors kept the group's stripe available)"
		}
		fmt.Printf("  site %d: committed=%-5d remote-applied=%-5d %s\n",
			s.Site, s.Committed, s.RemoteApplied, status)
	}

	if results.MultiGroupCommitted == 0 {
		log.Fatal("expected some transactions to span groups")
	}
	if results.XHandovers == 0 {
		log.Fatal("expected the coordinator crash to hand rounds over")
	}
	if results.Inconsistencies != 0 {
		log.Fatalf("local/global commit inconsistencies: %d", results.Inconsistencies)
	}
	if results.SafetyErr != nil {
		log.Fatalf("SAFETY VIOLATION: %v", results.SafetyErr)
	}
	fmt.Println("\nsafety: within every group each site committed the identical")
	fmt.Println("sequence; across groups no transaction committed on one stripe and")
	fmt.Println("aborted on another, and the union of the three orders is acyclic.")
}
