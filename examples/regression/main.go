// Regression example: the paper's Section 7 reports that the tool is used
// for automated regression testing — autonomously running a set of realistic
// load and fault scenarios and checking for performance or reliability
// regressions as protocol components evolve.
//
// This program is that harness: a scenario matrix with per-scenario
// invariants (safety, consistency, and minimum-performance floors). It exits
// non-zero if any scenario regresses.
//
// Run with: go run ./examples/regression
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

type scenario struct {
	name    string
	cfg     core.Config
	minTPM  float64 // reliability floor: committed throughput must exceed this
	maxAbrt float64 // abort-rate ceiling (%)
}

func main() {
	scenarios := []scenario{
		{
			name:   "baseline-3-sites",
			cfg:    core.Config{Sites: 3, Clients: 300, TotalTxns: 2000, Seed: 11},
			minTPM: 1500, maxAbrt: 8,
		},
		{
			name: "random-loss-5pct",
			cfg: core.Config{
				Sites: 3, Clients: 300, TotalTxns: 2000, Seed: 12,
				Faults: faults.Config{Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.05}},
			},
			minTPM: 1500, maxAbrt: 10,
		},
		{
			name: "bursty-loss-5pct",
			cfg: core.Config{
				Sites: 3, Clients: 300, TotalTxns: 2000, Seed: 13,
				Faults: faults.Config{Loss: faults.Loss{Kind: faults.LossBursty, Rate: 0.05, MeanBurst: 5}},
			},
			minTPM: 1500, maxAbrt: 10,
		},
		{
			name: "clock-drift-and-sched-latency",
			cfg: core.Config{
				Sites: 3, Clients: 300, TotalTxns: 2000, Seed: 14,
				Faults: faults.Config{
					ClockDriftRate:    0.02,
					ClockDriftSites:   []int32{2},
					SchedLatencyMean:  time5ms(),
					SchedLatencySites: []int32{3},
				},
			},
			minTPM: 1500, maxAbrt: 10,
		},
		{
			name: "crash-non-sequencer",
			cfg: core.Config{
				Sites: 3, Clients: 300, TotalTxns: 2000, Seed: 15,
				Faults:     faults.Config{Crashes: []faults.Crash{{Site: 2, At: 20 * sim.Second}}},
				MaxSimTime: 15 * sim.Minute,
			},
			minTPM: 800, maxAbrt: 12,
		},
		{
			name: "crash-sequencer",
			cfg: core.Config{
				Sites: 3, Clients: 300, TotalTxns: 2000, Seed: 16,
				Faults:     faults.Config{Crashes: []faults.Crash{{Site: 1, At: 20 * sim.Second}}},
				MaxSimTime: 15 * sim.Minute,
			},
			minTPM: 800, maxAbrt: 12,
		},
	}

	failures := 0
	for _, s := range scenarios {
		start := time.Now()
		verdict := "PASS"
		detail := ""
		m, err := core.New(s.cfg)
		if err != nil {
			verdict, detail = "FAIL", err.Error()
		} else {
			r, err := m.Run()
			switch {
			case err != nil:
				verdict, detail = "FAIL", err.Error()
			case r.SafetyErr != nil:
				verdict, detail = "FAIL", fmt.Sprintf("safety: %v", r.SafetyErr)
			case r.Inconsistencies != 0:
				verdict, detail = "FAIL", fmt.Sprintf("%d inconsistencies", r.Inconsistencies)
			case r.TPM < s.minTPM:
				verdict, detail = "FAIL", fmt.Sprintf("throughput regression: %.0f tpm < %.0f", r.TPM, s.minTPM)
			case r.AbortRatePct > s.maxAbrt:
				verdict, detail = "FAIL", fmt.Sprintf("abort-rate regression: %.2f%% > %.2f%%", r.AbortRatePct, s.maxAbrt)
			default:
				detail = r.Summary()
			}
		}
		if verdict == "FAIL" {
			failures++
		}
		fmt.Printf("%-32s %-4s (%v) %s\n", s.name, verdict, time.Since(start).Round(time.Millisecond), detail)
	}
	if failures > 0 {
		fmt.Printf("\n%d scenario(s) regressed\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall scenarios pass: no performance or reliability regressions")
}

func time5ms() sim.Time { return 5 * sim.Millisecond }
