// Fault tolerance example: subject a 3-site replicated database to 5%
// random message loss AND a site crash mid-run, then verify the paper's
// dependability properties: surviving sites keep committing, install a new
// view excluding the dead site, and all operational sites commit identical
// transaction sequences.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func main() {
	model, err := core.New(core.Config{
		Sites:       3,
		CPUsPerSite: 1,
		Clients:     300,
		TotalTxns:   3000,
		Seed:        7,
		Faults: faults.Config{
			// Every receiver independently drops 5% of messages.
			Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.05},
			// Site 3 dies 30 simulated seconds into the run.
			Crashes: []faults.Crash{{Site: 3, At: 30 * sim.Second}},
		},
		MaxSimTime: 10 * sim.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := model.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run finished after %.1fs simulated\n", results.Duration.Seconds())
	fmt.Printf("committed %d transactions at %.0f tpm despite loss and crash\n",
		results.Committed, results.TPM)
	fmt.Printf("group communication: %d retransmissions, %d NACKs, %d view change(s)\n",
		results.GCS.Retransmits, results.GCS.Nacks, results.GCS.ViewChanges)

	for _, s := range results.Sites {
		status := "operational"
		if s.Crashed {
			status = "CRASHED (its clients stay blocked, as in the paper)"
		}
		fmt.Printf("  site %d: committed=%-5d remote-applied=%-5d %s\n",
			s.Site, s.Committed, s.RemoteApplied, status)
	}

	if results.GCS.ViewChanges == 0 {
		log.Fatal("expected the survivors to install a new view")
	}
	if results.Inconsistencies != 0 {
		log.Fatalf("local/global commit inconsistencies: %d", results.Inconsistencies)
	}
	if results.SafetyErr != nil {
		log.Fatalf("SAFETY VIOLATION: %v", results.SafetyErr)
	}
	fmt.Println("\nsafety: operational sites committed identical sequences;")
	fmt.Println("the crashed site's log is a prefix of the survivors'.")
}
