// Fault tolerance example: subject a 3-site replicated database to 5%
// random message loss AND a site crash mid-run — and then bring the crashed
// site BACK: it rejoins through the recovery join handshake, state-transfers
// a snapshot from a donor, replays the delta, and serves traffic again.
//
// The run demonstrates both sides of dependability: the survivors keep
// committing through the outage (a new view excludes the dead site), and
// the recovered site's commit log re-converges to the group's, so at the
// end every operational site — the rejoined one included — has committed
// the identical transaction sequence.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func main() {
	model, err := core.New(core.Config{
		Sites:       3,
		CPUsPerSite: 1,
		Clients:     300,
		TotalTxns:   3000,
		Seed:        7,
		Faults: faults.Config{
			// Every receiver independently drops 5% of messages.
			Loss: faults.Loss{Kind: faults.LossRandom, Rate: 0.05},
			// Site 3 dies 30 simulated seconds into the run...
			Crashes: []faults.Crash{{Site: 3, At: 30 * sim.Second}},
			// ...and restarts 20 seconds later, rejoining the group.
			Recovers: []faults.Recover{{Site: 3, At: 50 * sim.Second}},
		},
		MaxSimTime: 10 * sim.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := model.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run finished after %.1fs simulated\n", results.Duration.Seconds())
	fmt.Printf("committed %d transactions at %.0f tpm despite loss, crash, and rejoin\n",
		results.Committed, results.TPM)
	fmt.Printf("group communication: %d retransmissions, %d NACKs, %d view change(s), %d join(s)\n",
		results.GCS.Retransmits, results.GCS.Nacks, results.GCS.ViewChanges, results.GCS.Joins)

	for _, s := range results.Sites {
		status := "operational"
		switch {
		case s.Recovered:
			status = fmt.Sprintf("RECOVERED (down %.1fs, recovery %.1fs, snapshot %.0fKB, delta %d, lag %d)",
				s.DowntimeMS/1000, s.RecoveryMS/1000, s.TransferKB, s.DeltaApplied, s.RejoinLag)
		case s.Crashed:
			status = "CRASHED (its clients stay blocked, as in the paper)"
		}
		fmt.Printf("  site %d: committed=%-5d remote-applied=%-5d %s\n",
			s.Site, s.Committed, s.RemoteApplied, status)
	}

	if results.GCS.ViewChanges == 0 {
		log.Fatal("expected the survivors to install a new view")
	}
	if results.Recoveries != 1 {
		log.Fatalf("expected one completed rejoin, got %d", results.Recoveries)
	}
	if results.TransferBytes == 0 {
		log.Fatal("expected a nonzero snapshot transfer")
	}
	if results.Inconsistencies != 0 {
		log.Fatalf("local/global commit inconsistencies: %d", results.Inconsistencies)
	}
	if results.RejoinViolations != 0 {
		log.Fatalf("rejoin prefix violations: %d", results.RejoinViolations)
	}
	if results.SafetyErr != nil {
		log.Fatalf("SAFETY VIOLATION: %v", results.SafetyErr)
	}
	fmt.Println("\nsafety: every operational site — the rejoined one included —")
	fmt.Println("committed the identical sequence; the recovered site's pre-crash")
	fmt.Println("log was verified as a prefix of its donor's at install time.")
}
