package repro

// Protocol-comparison benchmarks: the same replicated workload under the
// conservative and optimistic termination variants, fault-free and under
// loss. CI runs these with -json into BENCH_protocols.json so regressions in
// the optimistic pipeline (decide latency creeping up, rollbacks exploding,
// throughput diverging between variants) are tracked per commit.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
)

// reportProtocol attaches the certification-latency split and the
// speculation accounting to a protocol benchmark.
func reportProtocol(r *core.Results, b *testing.B) {
	b.ReportMetric(r.TPM, "tpm")
	b.ReportMetric(r.MeanLatencyMS, "lat-ms")
	b.ReportMetric(r.MeanCertDecideMS, "cert-decide-ms")
	b.ReportMetric(r.CertLat.Mean(), "cert-final-ms")
	b.ReportMetric(float64(r.Rollbacks), "rollbacks")
	b.ReportMetric(r.OptMispredictPct, "mispred-%")
	requireNoDrops(r, b)
}

func protocolCfg(p core.Protocol, loss faults.Loss) core.Config {
	return core.Config{
		Sites: 3, CPUsPerSite: 1, Clients: 500,
		Protocol: p,
		Faults:   faults.Config{Loss: loss},
	}
}

func BenchmarkProtocolConservative(b *testing.B) {
	benchRun(b, protocolCfg(core.ProtocolConservative, faults.Loss{}), reportProtocol)
}

func BenchmarkProtocolOptimistic(b *testing.B) {
	benchRun(b, protocolCfg(core.ProtocolOptimistic, faults.Loss{}), reportProtocol)
}

func BenchmarkProtocolConservativeLoss5(b *testing.B) {
	benchRun(b, protocolCfg(core.ProtocolConservative,
		faults.Loss{Kind: faults.LossRandom, Rate: 0.05}), reportProtocol)
}

func BenchmarkProtocolOptimisticLoss5(b *testing.B) {
	benchRun(b, protocolCfg(core.ProtocolOptimistic,
		faults.Loss{Kind: faults.LossRandom, Rate: 0.05}), reportProtocol)
}
