package repro

// Partial-replication benchmarks: the group-count sweep of `experiments
// shard` at reduced scale. CI runs these with -json into BENCH_shard.json so
// the scaling headroom of per-warehouse replication groups is tracked per
// commit: aggregate committed throughput against the single-group baseline,
// the multi-group share paying the cross-group commit round, and that
// round's retransmit volume. The 9-site full-replication point is the wall
// the groups remove — same offered load, one total order.

import (
	"testing"

	"repro/internal/core"
)

// reportShard attaches the partial-replication envelope: aggregate
// throughput, the committed share that spanned groups, and the cross-group
// round's retransmit and handover counters.
func reportShard(r *core.Results, b *testing.B) {
	b.ReportMetric(r.TPM, "tpm")
	b.ReportMetric(r.MeanLatencyMS, "lat-ms")
	b.ReportMetric(r.MultiGroupPct, "multigroup-%")
	b.ReportMetric(float64(r.XRetries), "xretries")
	b.ReportMetric(float64(r.XHandovers), "xhandovers")
	requireNoDrops(r, b)
}

// shardCfg builds one grid point at equal per-site resources: one CPU and 50
// clients per site, transaction budget growing with the site count so every
// point runs a comparable measurement window.
func shardCfg(groups, sitesPerGroup int, p core.Protocol) core.Config {
	total := groups * sitesPerGroup
	return core.Config{
		Sites:       sitesPerGroup,
		Groups:      groups,
		CPUsPerSite: 1,
		Clients:     50 * total,
		Protocol:    p,
		TotalTxns:   1000 * total / sitesPerGroup,
	}
}

func BenchmarkShardGroups1Conservative(b *testing.B) {
	benchRun(b, shardCfg(1, 3, core.ProtocolConservative), reportShard)
}

func BenchmarkShardGroups3Conservative(b *testing.B) {
	benchRun(b, shardCfg(3, 3, core.ProtocolConservative), reportShard)
}

func BenchmarkShardGroups1Optimistic(b *testing.B) {
	benchRun(b, shardCfg(1, 3, core.ProtocolOptimistic), reportShard)
}

func BenchmarkShardGroups3Optimistic(b *testing.B) {
	benchRun(b, shardCfg(3, 3, core.ProtocolOptimistic), reportShard)
}

// BenchmarkShardFullReplication9 is the comparison wall: nine sites in one
// replication group, every site applying every write through one total
// order.
func BenchmarkShardFullReplication9(b *testing.B) {
	benchRun(b, shardCfg(1, 9, core.ProtocolConservative), reportShard)
}
