// Package repro reproduces "Testing the Dependability and Performance of
// Group Communication Based Database Replication Protocols" (Sousa, Pereira,
// Soares, Correia Jr., Rocha, Oliveira, Moura — DSN 2005).
//
// The repository implements the paper's testing tool — a centralized
// discrete-event simulation that executes real implementations of the
// Database State Machine certification procedure and of a view-synchronous
// atomic multicast stack against simulated network, database engine, and
// TPC-C traffic generator components — and regenerates every table and
// figure of the paper's evaluation, with multi-seed replication and 95%
// confidence intervals via the parallel experiment engine (internal/expr).
// See README.md and the per-package documentation under internal/.
package repro
