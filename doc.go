// Package repro reproduces "Testing the Dependability and Performance of
// Group Communication Based Database Replication Protocols" (Sousa, Pereira,
// Soares, Correia Jr., Rocha, Oliveira, Moura — DSN 2005).
//
// The repository implements the paper's testing tool — a centralized
// discrete-event simulation that executes real implementations of the
// Database State Machine certification procedure and of a view-synchronous
// atomic multicast stack against simulated network, database engine, and
// TPC-C traffic generator components — and regenerates every table and
// figure of the paper's evaluation, with multi-seed replication and 95%
// confidence intervals via the parallel experiment engine (internal/expr).
//
// Two termination protocol variants are implemented, selected by
// core.Config.Protocol: the paper's conservative protocol (certify on final
// total-order delivery) and an optimistic-delivery variant (the Section 7
// ongoing-work direction) that certifies on tentative, spontaneous-order
// delivery one ordering round early — dbsm.SpecCertifier holds the
// speculative state with undo, internal/replica runs the two-stage
// pipeline, and tentative/final order mismatches roll back and re-certify
// deterministically. cmd/experiments's "protocols" subcommand reports the
// resulting certification-latency split; cmd/faultsim campaigns verify
// one-copy serializability for both variants under randomized fault
// schedules.
//
// Site liveness is an explicit lifecycle — Up → Crashed → Recovering → Up —
// owned by internal/recovery, so the dependability campaigns measure the
// recovery side the DSN'05 evaluation implies, not just survival: a crashed
// site (faults.Crash) can rejoin (faults.Recover) through a gcs join
// handshake (admission view change plus a sequencer-announced catch-up
// sequence), state-transfer a snapshot — certifier state, commit log,
// written pages — from a donor replica, and replay the deliveries buffered
// during the transfer. Safety verdicts extend across rejoin: the dead
// incarnation's log must be a prefix of the donor's at install, and a
// recovered site's log is held to full equality with the survivors' at the
// end of the run. Per-site downtime, recovery duration, transfer bytes, and
// post-rejoin commit lag surface through core.Results/Aggregate, the
// faultsim verdict lines, and cmd/experiments's "recovery" table.
//
// Overload is a first-class faultload: the group communication layer bounds
// its transmit queue and gates transmission on per-destination credits, the
// replica turns backlog into hysteresis backpressure, and the database
// refuses past-capacity work with an explicit Rejected outcome that clients
// retry idempotently (same TID, deterministic jittered backoff). Two fault
// kinds drive it — think-time saturation and the never-suspected slow-node
// gray failure — forced into every campaign schedule by `faultsim
// -overload`, swept by cmd/experiments's "overload" table (graceful
// degradation vs collapse at 2x), and pinned by the overload benchmarks.
// The sweep's faultload exposed a non-uniform sequencer delivery; the
// sequencer now holds self-assigned globals until a majority of the view
// acks the ordering announcement (README.md's "Overload and flow control"
// section has the details).
//
// Partial replication removes the full-replication wall the paper's Section
// 5.2 measures: core.Config.Groups splits the sites into per-warehouse
// replication groups, each with its own group-communication stack and total
// order (internal/xgroup holds the placement arithmetic). Single-stripe
// transactions commit through their group's order alone, so aggregate
// throughput scales with the group count; transactions spanning stripes run
// a cross-group commit round on top of the existing orders — home-ordered
// prepare, relayed and re-ordered per group, one certification vote per
// group, AND decision, with coordinator retransmits and crash handover.
// internal/check extends the safety verdict across groups (atomicity plus
// acyclic cross-group serialization), the campaign generator draws
// group-targeted faults under `faultsim -groups`, and cmd/experiments's
// "shard" table prints the scaling verdict (README.md's "Partial
// replication" section has the protocol walk-through).
//
// The emulated population scales to millions of users through the
// aggregate client tier: above core.Config.AggregateClients, per-client
// objects are replaced by one calibrated arrival process per site
// (internal/tpcc.Aggregate) — a state-dependent Poisson stream with a
// binomially-thinned warmup pool, batched into one simulation event per
// site per 10ms window, submitting through the identical
// admission/retry/backpressure path individual clients use. Equivalence is
// statistical, pinned within CI95 at 500 clients for both protocol
// variants; memory and wall clock stay O(sites + in-flight) to 10^6
// clients (cmd/experiments's "clients" table, BENCH_clients.json, and
// README.md's "Scaling to millions of clients" section).
//
// Beyond randomized campaigns, cmd/faultsim's -explore mode runs an
// adversarial search (internal/explore): fault schedules are genomes,
// coverage is a log2-bucketed fingerprint of the protocol counters the
// stacks expose (core.Results.Features), and schedules that reach new
// protocol states are mutated and spliced across generations on the
// internal/expr pool — deterministically, so the same seed and budget give
// byte-identical results at any worker count. Every UNSAFE schedule is
// delta-debugged down to a locally-minimal repro and saved as self-contained
// JSON (replayed by `faultsim -replay-file`, triaged by internal/check); the
// search cornered the residual n>=5 non-uniform delivery window documented
// in gcs/totalorder.go and surfaced the sequencer-handover renumbering
// divergence tracked in ROADMAP.md, both pinned as guarded repros under
// cmd/faultsim/testdata (README.md's "Adversarial exploration" section has
// the model and the corpus-directory convention).
//
// The simulation critical path is engineered to allocate nothing in steady
// state: certification runs against an inverted last-writer index
// (O(|ReadSet|) per transaction, differential-tested against the paper's
// history scan, which remains available via core.Config.ScanCertifier), the
// kernel schedules through a pointer-free 4-ary heap over pooled event
// slots, and the wire path hands buffers zero-copy from sender to receivers
// with pooled packets and thunks. On the fault-free 3-site TPC-C
// configuration this doubled simulator throughput (≈0.89M → ≈1.87M
// events/s); README.md's "Performance" section has the measurements and the
// reproduction commands.
//
// These invariants — deterministic packages, zero-copy buffer ownership,
// pool pairing, silent-drop accounting, allocation-free hot paths — are
// enforced mechanically by the custom analyzer suite under internal/lint,
// run in CI as cmd/analyze via `go vet -vettool` (README.md's "Static
// analysis" section documents the rules and the //lint:<rule>-ok waiver
// syntax).
//
// See README.md and the per-package documentation under internal/.
package repro
